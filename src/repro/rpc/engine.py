"""The transport-agnostic query engine (paper Section 4, once).

Query procedure, exactly as the paper's pseudocode sketches it:

1. hash the (possibly padded) selection range to ``l`` identifiers;
2. route each identifier through the overlay to its owning peer, counting
   hops;
3. each owner searches the identifier's bucket for its best match and
   replies with the candidate descriptor and score — failing over down the
   successor list when the owner is unreachable;
4. the querying peer picks the overall best reply (and optionally fetches
   the winning partition's rows);
5. "if none of the match is exact, also store the computed partition at
   the peers holding the computed identifiers."

The engine is written in continuation-passing style against the
:class:`~repro.rpc.transports.Transport` interface: every chain advances
through ``hop -> hop -> ... -> attempt -> (failover ->) reply`` callbacks.
On the event-driven transport those callbacks fire at later virtual
instants and the ``l`` chains interleave; on the synchronous transport
every callback fires before its scheduling call returns, so the identical
code executes the chains sequentially — the classic synchronous path.  On
the socket transport the callbacks fire from a real asyncio event loop.

Canonical replica-chain semantics (one behavior for every transport; the
sync/sim divergences this unification removed are documented in DESIGN
§11):

- candidate order: the nominal replica set first, then the alive repair
  targets, the routed owner always first;
- the owner attempt runs under the transport's base retry policy, each
  failover attempt under a single-attempt budget;
- each failover step is charged one successor-pointer routing hop and
  counted in query-level ``overlay_hops``; per-chain
  :attr:`ChainOutcome.hops` stays routing-only;
- system counters (queries, stores, placements, failovers, ...) are
  maintained identically on every transport;
- ``replica_stores`` counts replica store requests that were *answered*,
  not merely issued.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.partition import Partition, PartitionDescriptor
from repro.obs.distributed import TraceContext
from repro.obs.log import get_logger
from repro.obs.trace import NULL_TRACE, QueryTrace, Span
from repro.ranges.interval import IntRange
from repro.rpc.transports import Transport
from repro.sim.futures import SimFuture, gather
from repro.sim.policies import HedgePolicy

__all__ = [
    "MatchReply",
    "ChainOutcome",
    "LocatePhase",
    "StoreOutcome",
    "TimedQueryResult",
    "QueryEngine",
]

logger = get_logger("rpc.engine")


def _trace_ctx(trace: QueryTrace, span) -> TraceContext | None:
    """The wire trace context for a request issued under ``span``.

    ``None`` (send nothing) unless the trace carries a distributed
    trace id — so in-process and untraced runs put zero extra bytes on
    the wire, and :data:`NULL_TRACE` (whose ``trace_id``/``span_id`` are
    ``None`` class attributes) short-circuits for free.
    """
    trace_id = getattr(trace, "trace_id", None)
    if not trace_id:
        return None
    return TraceContext(trace_id, getattr(span, "span_id", None))


@dataclass(frozen=True)
class MatchReply:
    """One owner peer's answer to a match request.

    ``peer_id`` is the peer that actually answered — under failover this
    can be a successor-list replica rather than the identifier's owner.
    """

    peer_id: int
    identifier: int
    descriptor: PartitionDescriptor | None
    score: float


@dataclass(frozen=True)
class ChainOutcome:
    """One identifier lookup chain, timed."""

    identifier: int
    #: The identifier's nominal owner (the peer routing arrived at); under
    #: failover the answering peer is ``reply.peer_id`` instead.
    owner: int
    hops: int
    #: Hop-by-hop routing time of this chain.
    route_ms: float
    #: Reply from whichever replica answered; None when every candidate's
    #: budget ran out.
    reply: MatchReply | None
    #: Time from query start until this chain settled (transport clock).
    completed_ms: float
    timed_out: bool
    #: Failover steps taken down the successor list (0 = owner answered).
    failovers: int = 0
    #: Whether the answer came from a hedged (backup) lookup.
    hedged: bool = False
    #: Successor-pointer hops charged while failing over; query-level hop
    #: totals are ``hops + failover_hops`` (``hops`` stays routing-only).
    failover_hops: int = 0


@dataclass(frozen=True)
class LocatePhase:
    """Aggregated outcome of the locate phase (steps 1-4, no fetch)."""

    hashed_query: IntRange
    chains: tuple[ChainOutcome, ...]
    #: Whether a partial quorum answered early (stragglers cancelled).
    partial: bool
    best: MatchReply | None
    started: float
    locate_ms: float
    route_ms: float
    #: Chains that exhausted every replica's budget.
    timeouts: int
    #: Chains answered by a non-primary replica.
    failovers: int

    @property
    def overlay_hops(self) -> int:
        """Routing plus failover hops, summed over chains."""
        return sum(c.hops + c.failover_hops for c in self.chains)

    @property
    def answered_by(self) -> tuple[int, ...]:
        """Per chain: the answering peer, or the nominal owner when the
        whole replica chain was unreachable."""
        return tuple(
            c.reply.peer_id if c.reply is not None else c.owner
            for c in self.chains
        )


@dataclass(frozen=True)
class StoreOutcome:
    """Aggregated outcome of the store fan-out (step 5)."""

    #: New *primary* placements created.
    new_placements: int
    #: Store requests answered (stored or duplicate).
    acked: int
    #: Store requests that failed (unreachable target / timeout).
    failures: int
    store_ms: float


@dataclass(frozen=True)
class TimedQueryResult:
    """Outcome of one engine query, with phase timings.

    On the synchronous transport the ``*_ms`` fields measure cumulative
    simulated wire time rather than wall/virtual clock; on the socket
    transport they are wall-clock milliseconds.
    """

    query: IntRange
    hashed_query: IntRange
    matched: PartitionDescriptor | None
    similarity: float
    recall: float
    matcher_score: float
    exact: bool
    stored: bool
    chains: tuple[ChainOutcome, ...]
    #: Chains that exhausted every replica's retry budget (<= l).
    timeouts: int
    #: Chains answered by a successor-list replica after the owner was
    #: unreachable.
    failovers: int
    #: Store-on-miss placements that themselves failed.
    store_failures: int
    route_ms: float
    match_ms: float
    locate_ms: float
    fetch_ms: float
    store_ms: float
    total_ms: float
    #: Whether a partial quorum answered early (remaining chains cancelled).
    partial: bool = False
    fetched: Partition | None = None

    @property
    def found(self) -> bool:
        """Whether any candidate partition was located."""
        return self.matched is not None

    @property
    def degraded(self) -> bool:
        """Whether the answer came from fewer than ``l`` replies."""
        return self.timeouts > 0 or self.partial

    @property
    def overlay_hops(self) -> int:
        """Routing plus failover hops, summed over chains."""
        return sum(c.hops + c.failover_hops for c in self.chains)


class QueryEngine:
    """The query procedure, bound to one system and one transport.

    ``system`` provides the topology and bookkeeping surface shared by
    every deployment: ``config``, ``counters``, ``router``,
    ``identifiers_for``, ``place_identifier``, ``replica_owners`` and
    ``failover_candidates``.  :class:`~repro.core.system.RangeSelectionSystem`
    is the usual provider; the socket client supplies a stores-less mirror
    of the same surface.
    """

    def __init__(
        self,
        system,
        transport: Transport,
        *,
        quorum_m: int = 0,
        quorum_threshold: float = 0.9,
        hedge: HedgePolicy | None = None,
        fetch_rows: bool = False,
    ) -> None:
        self.system = system
        self.transport = transport
        self.quorum_m = quorum_m
        self.quorum_threshold = quorum_threshold
        self.hedge = hedge
        self.fetch_rows = fetch_rows

    # -- the query procedure -------------------------------------------

    def query(
        self,
        query: IntRange,
        relation: str,
        attribute: str,
        origin: int,
        padding: float | None = None,
        trace: QueryTrace | None = None,
    ) -> SimFuture[TimedQueryResult]:
        """Schedule one full query; resolves when all phases finish.

        On a clocked transport, drive its event loop to make time pass; on
        the synchronous transport the returned future is already settled.
        A ``trace`` records the whole lifecycle — every chain's route hops,
        each replica attempt with its failovers, the store fan-out.
        """
        trace = trace if trace is not None else NULL_TRACE
        config = self.system.config
        effective_padding = config.padding if padding is None else padding
        hashed_query = query
        if effective_padding > 0:
            hashed_query = query.pad(
                effective_padding,
                lower_bound=config.domain.low,
                upper_bound=config.domain.high,
            )
            trace.event(
                "padded", padding=effective_padding, hashed=str(hashed_query)
            )
        out: SimFuture[TimedQueryResult] = SimFuture()
        located = self.locate(
            hashed_query, relation, attribute, origin, trace=trace
        )
        located.add_done_callback(
            lambda settled: self._after_locate(
                settled.result(), query, relation, attribute, origin,
                out, trace,
            )
        )
        return out

    def locate(
        self,
        hashed_query: IntRange,
        relation: str,
        attribute: str,
        origin: int,
        trace: QueryTrace | None = None,
    ) -> SimFuture[LocatePhase]:
        """Steps 1-4 of the query procedure (no fetching, no storing).

        Hashes the range, runs the ``l`` lookup chains over the transport
        (concurrently where it has a clock), and resolves with the
        aggregated :class:`LocatePhase`.  Only failover bookkeeping touches
        the system counters here; query-level counting happens in
        :meth:`query`.
        """
        trace = trace if trace is not None else NULL_TRACE
        system = self.system
        started = self.transport.now()
        with trace.span("hash") as hash_span:
            identifiers = system.identifiers_for(hashed_query)
            for group, identifier in enumerate(identifiers):
                hash_span.event(
                    "group",
                    group=group,
                    identifier=identifier,
                    placed=system.place_identifier(identifier),
                )
        locate_span = trace.span("locate", origin=origin)
        chain_futures = [
            self._run_chain(
                origin, identifier, hashed_query, relation, attribute,
                started, parent=locate_span, trace=trace,
            )
            for identifier in identifiers
        ]
        out: SimFuture[LocatePhase] = SimFuture()

        def conclude(chains: list[ChainOutcome], partial: bool) -> None:
            locate_ms = self.transport.now() - started
            route_ms = max((c.route_ms for c in chains), default=0.0)
            timeouts = sum(1 for c in chains if c.timed_out)
            failovers = sum(
                1 for c in chains if not c.timed_out and c.failovers > 0
            )
            best = max(
                (
                    c.reply
                    for c in chains
                    if c.reply is not None and c.reply.descriptor is not None
                ),
                key=lambda reply: reply.score,
                default=None,
            )
            phase = LocatePhase(
                hashed_query=hashed_query,
                chains=tuple(chains),
                partial=partial,
                best=best,
                started=started,
                locate_ms=locate_ms,
                route_ms=route_ms,
                timeouts=timeouts,
                failovers=failovers,
            )
            locate_span.end(
                hops=phase.overlay_hops,
                timeouts=timeouts,
                failovers=failovers,
                best_score=best.score if best is not None else None,
                best_peer=best.peer_id if best is not None else None,
            )
            out.resolve(phase)

        m = self.quorum_m
        if m and m < len(chain_futures):
            # Partial quorum: answer as soon as m chains replied with a
            # good-enough best match; the stragglers are cancelled.
            threshold = self.quorum_threshold
            outcomes: list[ChainOutcome] = []
            remaining = [len(chain_futures)]
            completing = [False]

            def on_chain(settled: SimFuture) -> None:
                remaining[0] -= 1
                if completing[0]:
                    return  # a cancellation triggered by early completion
                if not settled.failed:
                    outcomes.append(settled.result())
                answered = sum(1 for c in outcomes if c.reply is not None)
                best = max(
                    (
                        c.reply.score
                        for c in outcomes
                        if c.reply is not None and c.reply.descriptor is not None
                    ),
                    default=None,
                )
                if (
                    remaining[0] > 0
                    and answered >= m
                    and best is not None
                    and best >= threshold
                ):
                    completing[0] = True
                    locate_span.event(
                        "quorum",
                        answered=answered,
                        cancelled=remaining[0],
                        best_score=best,
                    )
                    for chain_future in chain_futures:
                        chain_future.cancel()
                    conclude(list(outcomes), partial=True)
                elif remaining[0] == 0:
                    completing[0] = True
                    conclude(list(outcomes), partial=False)

            for chain_future in chain_futures:
                chain_future.add_done_callback(on_chain)
        else:
            gather(chain_futures).add_done_callback(
                lambda settled: conclude(settled.result(), False)
            )
        return out

    def store(
        self,
        r: IntRange,
        relation: str,
        attribute: str,
        origin: int,
        identifiers: "list[int] | None" = None,
        partition: Partition | None = None,
        trace: QueryTrace | None = None,
    ) -> SimFuture[StoreOutcome]:
        """Step 5: store a partition at the ``l`` identifier owners.

        With ``replicas = r > 1`` each identifier's entry is additionally
        placed on the owner's ``r - 1`` ring successors, marked as
        replicas.  Unreachable targets are skipped and counted as
        ``store_failures`` — the repair loop re-establishes the
        replication factor later.
        """
        trace = trace if trace is not None else NULL_TRACE
        system = self.system
        if identifiers is None:
            identifiers = system.identifiers_for(r)
        descriptor = PartitionDescriptor(relation, attribute, r)
        size = partition.size_bytes if partition is not None else 64
        store_started = self.transport.now()
        store_span = trace.span("store", descriptor=str(descriptor))
        requests: list[SimFuture] = []
        primaries: list[bool] = []
        for identifier in identifiers:
            for rank, target in enumerate(system.replica_owners(identifier)):
                primary = rank == 0
                store_span.event(
                    "placement",
                    identifier=identifier,
                    target=target,
                    primary=primary,
                )
                primaries.append(primary)
                requests.append(
                    self.transport.request(
                        origin,
                        target,
                        "store-request",
                        payload=(identifier, descriptor, partition, primary),
                        size_bytes=size,
                        trace_ctx=_trace_ctx(trace, store_span),
                    )
                )
        out: SimFuture[StoreOutcome] = SimFuture()

        def on_stored(settled: SimFuture) -> None:
            outcomes = settled.result()
            counters = system.counters
            failures = 0
            new_placements = 0
            for primary, value in zip(primaries, outcomes):
                if isinstance(value, Exception):
                    failures += 1
                    counters.store_failures += 1
                    continue
                if not primary:
                    self.transport.stats.replica_stores += 1
                if value:
                    if primary:
                        new_placements += 1
                    else:
                        counters.replica_placements += 1
            store_span.end(
                placements=len(outcomes) - failures,
                failures=failures,
                new_placements=new_placements,
            )
            counters.stores += 1
            counters.placements += new_placements
            out.resolve(
                StoreOutcome(
                    new_placements=new_placements,
                    acked=len(outcomes) - failures,
                    failures=failures,
                    store_ms=self.transport.now() - store_started,
                )
            )

        gather(requests).add_done_callback(on_stored)
        return out

    # -- internals -----------------------------------------------------

    def _run_chain(
        self,
        origin: int,
        identifier: int,
        hashed_query: IntRange,
        relation: str,
        attribute: str,
        started: float,
        parent: "Span | None" = None,
        trace: "QueryTrace | None" = None,
    ) -> SimFuture[ChainOutcome]:
        """One identifier: hop along the overlay path, then ask the owner —
        failing over down the successor list when the owner is
        unreachable.

        Routing hops are charged per edge but modelled as reliable — the
        iterative Chord lookup retries hops internally; the request/reply
        legs to the replicas are where loss and crashes bite.  The first
        attempt (the owner) runs under the transport's base policy; each
        failover attempt gets the single-attempt failover budget and is
        charged one successor-pointer hop.  With hedging enabled, a chain
        still unanswered at the hedge delay additionally launches the next
        untried replica *concurrently* — first answer wins, and settling
        the chain (resolve or cancel) cancels every outstanding request
        and timer.  The chain future always *resolves* (exhausting every
        replica yields ``timed_out=True``), so dead peers degrade the
        query instead of failing it.
        """
        transport = self.transport
        system = self.system
        parent = parent if parent is not None else NULL_TRACE
        trace = trace if trace is not None else NULL_TRACE
        placed = system.place_identifier(identifier)
        via_edges: list[tuple[int, int, str]] = []
        path = system.router.route(
            placed,
            start_id=origin,
            recorder=lambda f, t, via: via_edges.append((f, t, via)),
        )
        owner = path[-1]
        hops = len(path) - 1
        edges = list(zip(path, path[1:]))
        span = parent.span("chain", identifier=identifier, placed=placed)
        chain: SimFuture[ChainOutcome] = SimFuture()
        outstanding: list[SimFuture] = []
        pending_timers: list = []

        def on_chain_settled(settled: SimFuture) -> None:
            # Whether the chain resolved or was cancelled (quorum already
            # met), nothing launched on its behalf may keep running: the
            # losing hedge's request, queued failover hops, the hedge
            # timer — all released here.
            for timer in pending_timers:
                timer.cancel()
            for request in outstanding:
                request.cancel()
            if settled.cancelled:
                span.end(cancelled=True)

        chain.add_done_callback(on_chain_settled)

        def finish(
            reply: MatchReply | None,
            route_ms: float,
            timed_out: bool,
            failovers: int,
            hedged: bool = False,
            failover_hops: int = 0,
        ) -> None:
            if chain.done:
                return
            span.end(
                owner=owner,
                hops=hops,
                timed_out=timed_out,
                failovers=failovers,
                answered_by=reply.peer_id if reply is not None else None,
            )
            chain.resolve(
                ChainOutcome(
                    identifier=identifier,
                    owner=owner,
                    hops=hops,
                    route_ms=route_ms,
                    reply=reply,
                    completed_ms=transport.now() - started,
                    timed_out=timed_out,
                    failovers=failovers,
                    hedged=hedged,
                    failover_hops=failover_hops,
                )
            )

        def ask_replicas() -> None:
            route_ms = transport.now() - started
            match_started = transport.now()
            candidates = system.failover_candidates(
                identifier, is_alive=transport.is_alive
            )
            if owner not in candidates:
                candidates.insert(0, owner)
            #: next: rank of the next untried candidate; active: requests
            #: currently in flight; charged: failover hops charged so far.
            state = {"next": 1, "active": 0, "charged": 0}

            def exhausted() -> None:
                transport.stats.failover_exhausted += 1
                system.counters.failed_lookups += 1
                logger.warning(
                    "identifier %d unreachable at t=%.1f: all %d "
                    "candidates exhausted their budget",
                    identifier, transport.now(), len(candidates),
                )
                span.event("unreachable", candidates=len(candidates))
                finish(
                    None, route_ms, timed_out=True,
                    failovers=len(candidates) - 1,
                    failover_hops=state["charged"],
                )

            def launch(rank: int, hedged: bool) -> None:
                if chain.done or rank >= len(candidates):
                    return
                candidate = candidates[rank]
                state["active"] += 1
                if hedged:
                    transport.stats.hedges += 1
                    span.event("hedge-launch", peer=candidate, rank=rank)
                span.event("attempt", peer=candidate, rank=rank)
                request = transport.request(
                    origin,
                    candidate,
                    "match-request",
                    payload=(identifier, hashed_query, relation, attribute),
                    rank=rank,
                    observer=lambda name, attrs: span.event(
                        name if name == "breaker-open" else f"net-{name}",
                        **{"peer": candidate, **attrs},
                    ),
                    trace_ctx=_trace_ctx(trace, span),
                )
                outstanding.append(request)

                def on_done(settled: SimFuture) -> None:
                    state["active"] -= 1
                    if chain.done:
                        return
                    if settled.failed:
                        nxt = state["next"]
                        if nxt < len(candidates):
                            state["next"] = nxt + 1
                            span.event(
                                "failover",
                                source=candidate,
                                target=candidates[nxt],
                            )
                            # One successor-pointer hop to the next replica.
                            state["charged"] += 1
                            pending_timers.append(
                                transport.hop(
                                    candidate,
                                    candidates[nxt],
                                    lambda _delay: launch(nxt, hedged=False),
                                )
                            )
                        elif state["active"] == 0:
                            exhausted()
                        return
                    if hedged:
                        transport.stats.hedge_wins += 1
                        span.event("hedge-win", peer=candidate, rank=rank)
                    elif rank > 0:
                        transport.stats.failovers += 1
                        system.counters.failovers += 1
                        logger.info(
                            "degraded answer for identifier %d at t=%.1f: "
                            "replica %d answered after %d failover step(s)",
                            identifier, transport.now(), candidate, rank,
                        )
                    answer = settled.result()
                    if answer is None:
                        reply = MatchReply(candidate, identifier, None, 0.0)
                    else:
                        descriptor, score = answer
                        reply = MatchReply(candidate, identifier, descriptor, score)
                    span.event(
                        "match-reply",
                        peer=candidate,
                        score=reply.score,
                        descriptor=(
                            str(reply.descriptor)
                            if reply.descriptor is not None
                            else None
                        ),
                    )
                    if self.hedge is not None:
                        self.hedge.observe(transport.now() - match_started)
                    finish(
                        reply, route_ms, timed_out=False,
                        failovers=0 if hedged else rank, hedged=hedged,
                        failover_hops=state["charged"],
                    )

                request.add_done_callback(on_done)

            launch(0, hedged=False)
            if self.hedge is not None and len(candidates) > 1:
                hedge_delay = self.hedge.delay_ms()
                if hedge_delay is not None:

                    def fire_hedge() -> None:
                        if chain.done or state["next"] >= len(candidates):
                            return
                        nxt = state["next"]
                        state["next"] = nxt + 1
                        launch(nxt, hedged=True)

                    pending_timers.append(
                        transport.call_later(hedge_delay, fire_hedge)
                    )

        def advance(edge_index: int) -> None:
            if edge_index == len(edges):
                ask_replicas()
                return
            hop_from, hop_to = edges[edge_index]
            via = via_edges[edge_index][2] if edge_index < len(via_edges) else "?"

            def arrive(delay: float) -> None:
                # Emitted on arrival, so the event's timestamp is the
                # instant the hop completed.
                span.event(
                    "route-hop", source=hop_from, target=hop_to, via=via,
                    delay_ms=delay,
                )
                advance(edge_index + 1)

            transport.hop(hop_from, hop_to, arrive)

        advance(0)
        return chain

    def _after_locate(
        self,
        phase: LocatePhase,
        query: IntRange,
        relation: str,
        attribute: str,
        origin: int,
        out: SimFuture[TimedQueryResult],
        trace: QueryTrace,
    ) -> None:
        transport = self.transport
        config = self.system.config
        counters = self.system.counters
        hashed_query = phase.hashed_query
        best = phase.best
        matched = best.descriptor if best is not None else None
        matcher_score = best.score if best is not None else 0.0
        exact = matched is not None and matched.range == hashed_query

        def finish(
            fetched: Partition | None,
            fetch_ms: float,
            stored: bool,
            store_failures: int,
            store_ms: float,
        ) -> None:
            similarity = matched.jaccard_to(query) if matched is not None else 0.0
            recall = matched.containment_of(query) if matched is not None else 0.0
            counters.queries += 1
            counters.overlay_hops += phase.overlay_hops
            if exact:
                counters.exact_hits += 1
            if matched is None:
                counters.misses += 1
            trace.end(
                matched=str(matched) if matched is not None else None,
                similarity=similarity,
                recall=recall,
                exact=exact,
                stored=stored,
                hops=phase.overlay_hops,
                timeouts=phase.timeouts,
                failovers=phase.failovers,
                degraded="partial" if phase.partial else (phase.timeouts > 0),
                total_ms=transport.now() - phase.started,
            )
            out.resolve(
                TimedQueryResult(
                    query=query,
                    hashed_query=hashed_query,
                    matched=matched,
                    similarity=similarity,
                    recall=recall,
                    matcher_score=matcher_score,
                    exact=exact,
                    stored=stored,
                    chains=phase.chains,
                    timeouts=phase.timeouts,
                    failovers=phase.failovers,
                    store_failures=store_failures,
                    route_ms=phase.route_ms,
                    match_ms=phase.locate_ms - phase.route_ms,
                    locate_ms=phase.locate_ms,
                    fetch_ms=fetch_ms,
                    store_ms=store_ms,
                    total_ms=transport.now() - phase.started,
                    partial=phase.partial,
                    fetched=fetched,
                )
            )

        def store_phase(fetched: Partition | None, fetch_ms: float) -> None:
            if exact or not config.store_on_miss:
                finish(fetched, fetch_ms, stored=False, store_failures=0, store_ms=0.0)
                return
            stored_future = self.store(
                hashed_query,
                relation,
                attribute,
                origin,
                identifiers=[c.identifier for c in phase.chains],
                trace=trace,
            )
            stored_future.add_done_callback(
                lambda settled: finish(
                    fetched,
                    fetch_ms,
                    stored=True,
                    store_failures=settled.result().failures,
                    store_ms=settled.result().store_ms,
                )
            )

        if self.fetch_rows and best is not None:
            fetch_started = transport.now()
            fetch_span = trace.span(
                "fetch", peer=best.peer_id, descriptor=str(best.descriptor)
            )
            fetch = transport.request(
                origin,
                best.peer_id,
                "fetch-partition",
                payload=(best.identifier, best.descriptor),
                trace_ctx=_trace_ctx(trace, fetch_span),
            )

            def on_fetched(settled: SimFuture) -> None:
                fetched = None if settled.failed else settled.result()
                fetch_span.end(ok=not settled.failed)
                store_phase(fetched, transport.now() - fetch_started)

            fetch.add_done_callback(on_fetched)
        else:
            store_phase(None, 0.0)
