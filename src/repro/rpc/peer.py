"""What one peer does with an incoming request — transport-free.

Every transport ends at the same three data RPCs: *match* (best entry in
a bucket, or across the local store when the local-index extension is
on), *store* (cache one placement) and *fetch* (return the matched
partition's rows).  :class:`PeerLogic` owns that dispatch over one
peer's :class:`~repro.storage.store.PeerStore`, so the in-process
handlers of :class:`~repro.core.system.RangeSelectionSystem` and the
socket :class:`~repro.rpc.server.PeerServer` cannot drift apart.
"""

from __future__ import annotations

from typing import Any

from repro.core.matcher import Matcher
from repro.db.partition import Partition, PartitionDescriptor
from repro.errors import ConfigError
from repro.ranges.interval import IntRange
from repro.storage.store import PeerStore

__all__ = ["PeerLogic", "DATA_KINDS"]

#: The data-plane request kinds every transport must serve.
DATA_KINDS = ("match-request", "store-request", "fetch-partition")


class PeerLogic:
    """Request dispatch for one peer's partitions and buckets."""

    def __init__(
        self,
        node_id: int,
        store: PeerStore,
        matcher: Matcher,
        *,
        local_index: bool = False,
    ) -> None:
        self.node_id = node_id
        self.store = store
        self.matcher = matcher
        self.local_index = local_index

    def handle(self, kind: str, payload: Any) -> Any:
        """Serve one request; raises ``ConfigError`` for unknown kinds."""
        if kind == "match-request":
            identifier, query, relation, attribute = payload
            return self.match(identifier, query, relation, attribute)
        if kind == "store-request":
            identifier, descriptor, partition, primary = payload
            return self.store.store(
                identifier, descriptor, partition, primary=primary
            )
        if kind == "fetch-partition":
            identifier, descriptor = payload
            return self.fetch(identifier, descriptor)
        raise ConfigError(f"unknown message kind {kind!r}")

    def match(
        self,
        identifier: int,
        query: IntRange,
        relation: str,
        attribute: str,
    ) -> tuple[PartitionDescriptor, float] | None:
        """The best-scoring stored descriptor for ``query``, if any."""
        score = self.matcher.score
        if self.local_index:
            found = self.store.best_match_local(query, relation, attribute, score)
        else:
            found = self.store.best_match_in_bucket(
                identifier, query, relation, attribute, score
            )
        if found is None:
            return None
        entry, value = found
        return (entry.descriptor, value)

    def fetch(
        self, identifier: int, descriptor: PartitionDescriptor
    ) -> Partition | None:
        """The stored partition under ``(identifier, descriptor)``."""
        bucket = self.store.bucket(identifier)
        entry = bucket.get(descriptor) if bucket is not None else None
        return entry.partition if entry is not None else None

    def holds(self, identifier: int, descriptor: PartitionDescriptor) -> bool:
        """Whether this peer currently stores ``(identifier, descriptor)``.

        The anti-entropy digest primitive: a repairing holder asks each
        replica target which of a batch of keys it already has, and only
        pushes the missing ones — one round trip per peer per round
        instead of one blind push per entry.
        """
        bucket = self.store.bucket(identifier)
        return bucket is not None and bucket.get(descriptor) is not None
