"""The socket side of the query engine: transport, topology view, client.

Three pieces turn the transport-agnostic
:class:`~repro.rpc.engine.QueryEngine` into a real network client:

- :class:`SocketTransport` — the third :class:`~repro.rpc.transports.Transport`.
  ``request()`` opens an asyncio TCP connection to the recipient and
  settles a :class:`~repro.sim.futures.SimFuture` when the reply frame
  lands, so the ``l`` lookup chains of one query run concurrently over
  real connections.  Routing hops stay *virtual*: the client mirrors the
  full ring, so the owner of an identifier is a local computation, and
  each traversed finger edge is charged to the traffic stats without a
  network round trip (the classic client-mode DHT shortcut).
- :class:`ClientSystem` — the engine's topology contract (hashing,
  placement, replica sets) rebuilt from a membership map instead of local
  peer stores.  Node ids are SHA-1 of peer addresses, so the client
  places identifiers exactly like every server's mirror.
- :class:`ClusterClient` — connects to any live peer, mirrors membership
  and config from its ``hello`` reply, and exposes ``query`` / ``leave``
  / ``repair`` over the cluster.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Any, Callable

from repro.chord.hashing import node_id_for_address, rehash_for_placement
from repro.chord.ring import ChordRing
from repro.core.config import SystemConfig
from repro.core.overlays import ChordRouter
from repro.core.system import SIM_ATTRIBUTE, SIM_RELATION, SystemCounters
from repro.errors import (
    OpenCircuitError,
    PeerUnavailableError,
    ReproError,
    RequestTimeoutError,
)
from repro.lsh import DomainMinHashIndex, LSHIdentifierScheme, family_for_domain
from repro.net.transport import TrafficStats
from repro.obs.distributed import (
    FlightRecorder,
    StitchReport,
    TraceContext,
    cluster_histogram,
    counter_total,
    load_skew,
    new_trace_id,
    stitch_trace,
    wall_ms,
)
from repro.obs.log import get_logger
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import QueryTrace
from repro.ranges.interval import IntRange
from repro.rpc import wire
from repro.rpc.engine import QueryEngine, TimedQueryResult
from repro.rpc.transports import Observer, Transport
from repro.sim.futures import SimFuture
from repro.sim.policies import AdaptiveTimeout, CircuitBreaker, JitteredBackoff
from repro.util.rng import derive_rng

__all__ = ["SocketTransport", "ClientSystem", "ClusterClient", "ClusterScraper"]

logger = get_logger("rpc.client")


class _Handle:
    """Cancellation handle over an asyncio timer (or nothing)."""

    def __init__(self, inner: Any = None) -> None:
        self._inner = inner

    def cancel(self) -> None:
        if self._inner is not None:
            self._inner.cancel()


class SocketTransport(Transport):
    """The engine's transport over asyncio TCP connections.

    Must be used from inside a running event loop (the
    :class:`ClusterClient` drives one); ``request()`` spawns one task per
    exchange and settles the returned future from the loop.

    With ``policies=True`` (the default) the transport runs the adaptive
    mechanisms of :mod:`repro.sim.policies` against real sockets: a
    Jacobson/Karn :class:`~repro.sim.policies.AdaptiveTimeout` shrinks
    per-peer patience toward observed RTTs, a
    :class:`~repro.sim.policies.CircuitBreaker` fails requests to
    repeatedly-unresponsive peers fast (the rejection reads as a failed
    settle, so the engine's failover walks on to the next replica
    immediately instead of burning a timeout per query), and a
    :class:`~repro.sim.policies.JitteredBackoff` spaces the retries that
    do happen so recovering peers are not met with a thundering herd.
    """

    def __init__(
        self,
        endpoints: dict[int, tuple[str, int]],
        *,
        registry: MetricsRegistry | None = None,
        timeout_ms: float = 2_000.0,
        retries: int = 1,
        policies: bool = True,
        seed: int = 0,
    ) -> None:
        self.endpoints = dict(endpoints)
        self._stats = TrafficStats(registry=registry)
        self.timeout_ms = timeout_ms
        self.retries = retries
        #: Peers that refused a connection; cleared by a successful ping.
        self.dead: set[int] = set()
        self._tasks: set[asyncio.Task] = set()
        self._epoch = time.monotonic()
        self.adaptive: AdaptiveTimeout | None = None
        self.breaker: CircuitBreaker | None = None
        self.backoff: JitteredBackoff | None = None
        if policies:
            self.adaptive = AdaptiveTimeout(
                floor_ms=min(100.0, timeout_ms),
                ceiling_ms=timeout_ms,
            )
            self.breaker = CircuitBreaker(
                self.now,
                failure_threshold=3,
                cooldown_ms=timeout_ms,
                registry=registry,
                namespace="rpc.breaker",
            )
            self.backoff = JitteredBackoff(
                base_ms=25.0,
                cap_ms=max(25.0, timeout_ms),
                seed=seed,
                name="rpc/backoff",
            )

    @property
    def stats(self) -> TrafficStats:
        return self._stats

    def now(self) -> float:
        return (time.monotonic() - self._epoch) * 1000.0

    def is_alive(self, peer_id: int) -> bool:
        return peer_id not in self.dead

    def mark_alive(self, peer_id: int) -> None:
        self.dead.discard(peer_id)
        if self.breaker is not None:
            self.breaker.reset(peer_id)
        if self.adaptive is not None:
            self.adaptive.forget(peer_id)

    def call_later(self, delay_ms: float, fn: Callable[[], None]) -> Any:
        loop = asyncio.get_running_loop()
        return _Handle(loop.call_later(delay_ms / 1000.0, fn))

    def hop(
        self, hop_from: int, hop_to: int, fn: Callable[[float], None]
    ) -> Any:
        # The ring is mirrored locally, so overlay routing costs no wire
        # time here; the edge is still charged as a routing message to
        # keep hop accounting comparable across transports.
        self.stats.record_routing_hops(1)
        fn(0.0)
        return _Handle()

    def request(
        self,
        sender: int,
        recipient: int,
        kind: str,
        payload: Any = None,
        *,
        size_bytes: int = 64,
        rank: int = 0,
        observer: Observer | None = None,
        trace_ctx: TraceContext | None = None,
    ) -> SimFuture:
        future: SimFuture = SimFuture()
        attempts = (self.retries + 1) if rank == 0 else 1
        task = asyncio.get_running_loop().create_task(
            self._exchange(
                future, sender, recipient, kind, payload,
                size_bytes=size_bytes, attempts=attempts, observer=observer,
                trace_ctx=trace_ctx,
            )
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return future

    async def _exchange(
        self,
        future: SimFuture,
        sender: int,
        recipient: int,
        kind: str,
        payload: Any,
        *,
        size_bytes: int,
        attempts: int,
        observer: Observer | None,
        trace_ctx: TraceContext | None = None,
    ) -> None:
        host, port = self.endpoints[recipient]
        # The context rides as an optional envelope field; old servers
        # ignore it, so traced and untraced requests interoperate freely.
        trace_wire = trace_ctx.to_wire() if trace_ctx is not None else None
        if self.breaker is not None and not self.breaker.allow(recipient):
            # Fail fast: the engine sees a failed settle and walks on to
            # the next replica without waiting out a timeout.
            if observer is not None:
                observer("breaker-open", {"to": recipient})
            if not future.done:
                future.reject(OpenCircuitError(recipient))
            return
        waited = 0.0
        for attempt in range(attempts):
            if future.done:
                return  # cancelled (hedge loser / quorum leftover)
            if observer is not None:
                observer(
                    "send", {"attempt": attempt, "to": recipient, "kind": kind}
                )
            timeout_ms = self.timeout_ms
            if self.adaptive is not None:
                adaptive = self.adaptive.timeout_ms(recipient)
                if adaptive is not None:
                    timeout_ms = adaptive
            started = time.monotonic()
            try:
                value = await wire.call(
                    host, port, kind, payload,
                    sender=sender, peer_id=recipient,
                    timeout_ms=timeout_ms,
                    trace=trace_wire,
                )
            except PeerUnavailableError as exc:
                # A refused connection is definitive — no retry budget
                # spent, the peer is marked dead for failover planning.
                self.dead.add(recipient)
                self.stats.timeouts += 1
                if self.breaker is not None:
                    self.breaker.record_failure(recipient)
                if observer is not None:
                    observer("unreachable", {"to": recipient})
                if not future.done:
                    future.reject(exc)
                return
            except RequestTimeoutError:
                waited += (time.monotonic() - started) * 1000.0
                self.stats.timeouts += 1
                if self.breaker is not None:
                    self.breaker.record_failure(recipient)
                if attempt + 1 < attempts:
                    self.stats.retries += 1
                    if observer is not None:
                        observer("retry", {"attempt": attempt + 1})
                    if self.backoff is not None:
                        await asyncio.sleep(
                            self.backoff.delay_ms(attempt) / 1000.0
                        )
                    continue
                if not future.done:
                    future.reject(
                        RequestTimeoutError(recipient, attempts, waited)
                    )
                return
            except ReproError as exc:
                if not future.done:
                    future.reject(exc)
                return
            elapsed_ms = (time.monotonic() - started) * 1000.0
            self.stats.messages += 2  # request + reply frames
            self.stats.bytes += size_bytes + 64
            self.stats.latency_ms += elapsed_ms
            self.stats.by_kind[kind] += 1
            if self.breaker is not None:
                self.breaker.record_success(recipient)
            if self.adaptive is not None and attempt == 0:
                # Karn's rule: only unambiguous (first-try) samples feed
                # the estimator.
                self.adaptive.observe(recipient, elapsed_ms)
            if observer is not None:
                observer("reply", {"ms": elapsed_ms})
            if not future.done:
                future.resolve(value)
            return


class ClientSystem:
    """The engine's topology contract, served from a membership map.

    Mirrors the hashing/placement/replication views of
    :class:`~repro.core.system.RangeSelectionSystem` (the engine's
    documented contract) without any local peer state: identifiers come
    from the same seeded LSH scheme, the ring is rebuilt from member
    addresses, and liveness is whatever the transport has observed.
    """

    def __init__(
        self,
        config: SystemConfig,
        members: dict[str, tuple[str, int]],
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config
        self.members = dict(members)
        self.metrics = registry if registry is not None else MetricsRegistry()
        family = family_for_domain(config.family, config.domain)
        self.scheme = LSHIdentifierScheme.from_family(
            family, l=config.l, k=config.k, seed=config.seed,
            id_bits=config.id_bits,
        )
        self._accel: DomainMinHashIndex | None = None
        if config.accelerate:
            self._accel = DomainMinHashIndex(self.scheme, config.domain)
        ring = ChordRing(
            m=config.id_bits, successor_list_size=max(4, config.replicas)
        )
        for address in self.members:
            ring.add_node(address)
        ring.build()
        self.router = ChordRouter(ring)
        self.counters = SystemCounters(registry=self.metrics)
        #: node id -> (host, port), for the transport.
        self.endpoints: dict[int, tuple[str, int]] = {
            node_id: self.members[ring.node(node_id).address]
            for node_id in ring.node_ids
        }

    def identifiers_for(self, r: IntRange) -> list[int]:
        if self._accel is not None:
            domain = self.config.domain
            if r.start >= domain.low and r.end <= domain.high:
                return self._accel.identifiers(r)
        return self.scheme.identifiers(r)

    def place_identifier(self, identifier: int) -> int:
        if self.config.placement == "rehash":
            return rehash_for_placement(identifier, self.config.id_bits)
        return identifier

    def replica_owners(self, identifier: int) -> list[int]:
        return self.router.replica_set(
            self.place_identifier(identifier), self.config.replicas
        )

    def replica_targets(
        self, identifier: int, is_alive: Callable[[int], bool]
    ) -> list[int]:
        return self.router.replica_set(
            self.place_identifier(identifier),
            self.config.replicas,
            predicate=is_alive,
        )

    def failover_candidates(
        self,
        identifier: int,
        is_alive: Callable[[int], bool] | None = None,
    ) -> list[int]:
        candidates = self.replica_owners(identifier)
        if self.config.replicas > 1 and is_alive is not None:
            for peer in self.replica_targets(identifier, is_alive):
                if peer not in candidates:
                    candidates.append(peer)
        return candidates


class ClusterClient:
    """A querying client of a live socket cluster (``repro client``)."""

    def __init__(
        self,
        bootstrap: tuple[str, int],
        *,
        loop: asyncio.AbstractEventLoop | None = None,
        timeout_ms: float = 2_000.0,
        retries: int = 1,
        policies: bool = True,
        flight_dir: str | None = None,
    ) -> None:
        self.bootstrap = bootstrap
        self.timeout_ms = timeout_ms
        self.retries = retries
        self.policies = policies
        #: The client's own black box: breaker transitions and trace
        #: collection events; dumped to ``flight_dir`` when a breaker
        #: opens (the client-side analogue of a server's SWIM eviction).
        self.flight = FlightRecorder("client")
        self.flight_dir = flight_dir
        self._owns_loop = loop is None
        self.loop = loop if loop is not None else asyncio.new_event_loop()
        self.system: ClientSystem
        self.transport: SocketTransport
        self.engine: QueryEngine
        self._rng = None
        self.refresh()

    # -- plumbing --------------------------------------------------------

    def _run(self, coroutine):
        return self.loop.run_until_complete(coroutine)

    async def _await_future(self, future: SimFuture):
        """Bridge a SimFuture settled by transport tasks into awaitable."""
        done = self.loop.create_future()
        future.add_done_callback(
            lambda settled: done.done() or done.set_result(settled)
        )
        settled = await done
        return settled.result()

    def _on_breaker_transition(self, peer_id: int, old: str, new: str) -> None:
        """Record breaker flips; an opening breaker dumps the black box."""
        self.flight.record_event("breaker", peer=peer_id, old=old, new=new)
        if new == "open" and self.flight_dir:
            path = os.path.join(self.flight_dir, "flight-client.jsonl")
            try:
                self.flight.dump(path, reason=f"breaker-open:{peer_id}")
            except OSError:
                logger.warning("client flight dump to %s failed", path)

    def close(self) -> None:
        if self._owns_loop and not self.loop.is_closed():
            self.loop.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- membership ------------------------------------------------------

    def refresh(self) -> None:
        """Re-mirror membership and config from the bootstrap peer."""
        hello = self._run(
            wire.call(
                self.bootstrap[0], self.bootstrap[1], "hello",
                timeout_ms=self.timeout_ms,
            )
        )
        config = wire.config_from_wire(hello["config"])
        members = {
            address: (str(endpoint[0]), int(endpoint[1]))
            for address, endpoint in hello["members"].items()
        }
        previously_dead = (
            self.transport.dead if hasattr(self, "transport") else set()
        )
        self.system = ClientSystem(config, members)
        self.transport = SocketTransport(
            self.system.endpoints,
            registry=self.system.metrics,
            timeout_ms=self.timeout_ms,
            retries=self.retries,
            policies=self.policies,
            seed=config.seed,
        )
        self.transport.dead |= previously_dead & set(self.system.endpoints)
        # Peers the ring itself suspects are poor first choices: mark
        # them dead up front so origin picking and failover planning
        # route around them (a refuting peer clears itself on the next
        # successful exchange via mark_alive).
        node_of = {
            self.system.router.ring.node(node_id).address: node_id
            for node_id in self.system.router.node_ids
        }
        for address, record in hello.get("states", {}).items():
            state = str(record[0]) if record else "alive"
            node_id = node_of.get(address)
            if node_id is not None and state != "alive":
                self.transport.dead.add(node_id)
        if self.transport.breaker is not None:
            self.transport.breaker.transition_hook = self._on_breaker_transition
        self.engine = QueryEngine(self.system, self.transport)
        self._rng = derive_rng(config.seed, "client/origins")
        logger.info(
            "mirrored %d member(s) at epoch %s",
            len(members), hello.get("epoch"),
        )

    @property
    def members(self) -> dict[str, tuple[str, int]]:
        return self.system.members

    def endpoint_of(self, address: str) -> tuple[str, int]:
        return self.system.members[address]

    def pick_origin(self) -> int:
        """A random believed-alive member to originate routing from."""
        alive = [
            node_id
            for node_id in self.system.router.node_ids
            if self.transport.is_alive(node_id)
        ]
        if not alive:
            raise ReproError("no alive peer can originate a query")
        return alive[int(self._rng.integers(len(alive)))]

    # -- the query path ----------------------------------------------------

    def start_trace(self, query: IntRange | None = None, **attrs) -> QueryTrace:
        """A wall-clock trace for one query over the socket transport."""
        if query is not None:
            attrs.setdefault("query", str(query))
        attrs.setdefault("path", "socket")
        return QueryTrace(clock=self.transport.now, **attrs)

    def query(
        self,
        query: IntRange,
        relation: str = SIM_RELATION,
        attribute: str = SIM_ATTRIBUTE,
        origin: int | None = None,
        padding: float | None = None,
        trace: QueryTrace | None = None,
    ) -> TimedQueryResult:
        """One full query (locate, match, store-on-miss) over sockets."""
        if origin is None:
            origin = self.pick_origin()

        async def go() -> TimedQueryResult:
            future = self.engine.query(
                query, relation, attribute, origin,
                padding=padding, trace=trace,
            )
            return await self._await_future(future)

        return self._run(go())

    def query_traced(
        self,
        query: IntRange,
        relation: str = SIM_RELATION,
        attribute: str = SIM_ATTRIBUTE,
        origin: int | None = None,
        padding: float | None = None,
    ) -> tuple[TimedQueryResult, QueryTrace, StitchReport]:
        """One query as a *distributed* trace: run, collect, stitch.

        Mints a trace id so every request of this query carries a wire
        context, runs the query, then asks every reachable member for its
        retained span fragments of this trace (``telemetry`` with
        ``spans_for``) and grafts them into the client trace tree.  The
        returned :class:`~repro.obs.distributed.StitchReport` says how
        many fragments attached, from which nodes, and whether any span's
        timing betrayed cross-node clock skew.
        """
        trace = self.start_trace(query)
        trace.trace_id = new_trace_id()
        #: Wall anchor: lets stitching map each server's wall-clock span
        #: times onto this trace's monotonic clock.
        trace.root.attrs["wall_start_ms"] = wall_ms()
        result = self.query(
            query, relation, attribute, origin, padding, trace=trace
        )
        fragments = self.collect_fragments(trace.trace_id)
        report = stitch_trace(trace, fragments)
        self.flight.record_event(
            "trace-stitched",
            trace_id=trace.trace_id,
            attached=report.attached,
            orphans=report.orphans,
            nodes=len(report.nodes),
        )
        return result, trace, report

    def collect_fragments(self, trace_id: str) -> list[dict]:
        """Every reachable member's span fragments for one trace id.

        Peers that died mid-query simply contribute nothing — their
        absence *is* the signal (the trace shows the timeout and the
        failover hop instead).
        """
        fragments: list[dict] = []
        for address in sorted(self.system.members):
            try:
                reply = self.call(
                    address, "telemetry", {"spans_for": trace_id}
                )
            except ReproError:
                continue
            if isinstance(reply, dict):
                fragments.extend(
                    doc for doc in reply.get("spans") or []
                    if isinstance(doc, dict)
                )
        return fragments

    # -- cluster control -------------------------------------------------

    def call(self, address: str, kind: str, payload: Any = None) -> Any:
        """One control RPC to a member, by address."""
        host, port = self.endpoint_of(address)
        return self._run(
            wire.call(host, port, kind, payload, timeout_ms=self.timeout_ms)
        )

    def ping(self, address: str) -> bool:
        try:
            return bool(self.call(address, "ping"))
        except ReproError:
            return False

    def metrics_of(self, address: str) -> dict:
        """One peer's metrics registry snapshot (swim/repair telemetry)."""
        return self.call(address, "metrics")

    def telemetry_of(self, address: str, spans: int = 32) -> dict:
        """One peer's full telemetry snapshot (metrics + queue + SWIM +
        census + recent span fragments), versioned and timestamped."""
        return self.call(address, "telemetry", {"spans": spans})

    def entries_of(self, address: str, page_size: int = 512) -> list:
        """One peer's stored entries as (id, descriptor, partition, primary).

        Iterates the chunked form of the ``entries`` RPC so an
        arbitrarily large store never produces a reply past the wire
        frame cap.
        """
        records: list = []
        offset = 0
        while True:
            page = self.call(
                address, "entries", {"offset": offset, "limit": page_size}
            )
            if not isinstance(page, dict):
                return page if isinstance(page, list) else records
            batch = page.get("entries", [])
            records.extend(batch)
            offset += len(batch)
            if not batch or offset >= int(page.get("total", 0)):
                return records

    def leave(self, address: str) -> int:
        """Ask a peer to leave gracefully; returns copies it handed off."""
        moved = int(self.call(address, "leave"))
        self.refresh()
        return moved

    def repair(self) -> int:
        """Client-driven anti-entropy: one repair round over the cluster.

        Pulls every live peer's entry list, computes each entry's goal
        replica set over the *alive* members (the same goal state the
        simulated :class:`~repro.sim.repair.ReplicaRepairer` converges
        to), and pushes the missing copies.  Returns copies created.
        """
        return self._run(self._repair_round())

    async def _repair_round(self) -> int:
        # Probe liveness first so replica targets skip dead peers.
        node_of = {}
        for node_id in self.system.router.node_ids:
            address = self.system.router.ring.node(node_id).address
            node_of[address] = node_id
        entries_by_peer: dict[int, list] = {}
        for address, (host, port) in self.system.members.items():
            node_id = node_of[address]
            entries: list = []
            offset = 0
            try:
                while True:
                    page = await wire.call(
                        host, port, "entries",
                        {"offset": offset, "limit": 512},
                        peer_id=node_id, timeout_ms=self.timeout_ms,
                    )
                    batch = page.get("entries", []) if isinstance(page, dict) else []
                    entries.extend(batch)
                    offset += len(batch)
                    if not batch or not isinstance(page, dict) or offset >= int(
                        page.get("total", 0)
                    ):
                        break
            except ReproError:
                self.transport.dead.add(node_id)
                continue
            self.transport.mark_alive(node_id)
            entries_by_peer[node_id] = entries
        # holders[(identifier, descriptor)] = {node_id: (partition, primary)}
        holders: dict[tuple, dict[int, tuple]] = {}
        for node_id, entries in entries_by_peer.items():
            for identifier, descriptor, partition, primary in entries:
                holders.setdefault((identifier, descriptor), {})[node_id] = (
                    partition, primary,
                )
        copies = 0
        for (identifier, descriptor), holding in holders.items():
            targets = self.system.replica_targets(
                identifier, self.transport.is_alive
            )
            # Prefer a source that still has the rows, not just metadata.
            source = max(
                holding.values(), key=lambda held: held[0] is not None
            )
            partition = source[0]
            for rank, target in enumerate(targets):
                held = holding.get(target)
                primary = rank == 0
                if held is not None and (held[1] == primary or not primary):
                    continue  # already placed correctly (or a spare copy)
                host, port = self.system.endpoints[target]
                try:
                    stored = await wire.call(
                        host, port, "store-request",
                        (identifier, descriptor, partition, primary),
                        peer_id=target, timeout_ms=self.timeout_ms,
                    )
                except ReproError:
                    self.transport.dead.add(target)
                    continue
                if stored:
                    copies += 1
        self.system.counters.repairs += copies
        return copies


class ClusterScraper:
    """Polls every member's ``telemetry`` RPC into one cluster view.

    Each :meth:`scrape` returns a merged document: per-node rows (QPS
    from request-count deltas between scrapes, queue depth, repair debt,
    census, SWIM epoch, breaker state, clock skew versus the scraper's
    wall clock) plus cluster aggregates — bucket-merged ``p50/p95/p99``
    service time and the Gini coefficient over per-node request counts,
    the same skew statistic :mod:`repro.obs.health` reports for the
    simulator's ring, so live and simulated load imbalance are directly
    comparable.  Unreachable members are listed in ``errors``, never
    raised — a scraper that dies with its subject is useless.
    """

    def __init__(self, client: ClusterClient, *, spans: int = 8) -> None:
        self.client = client
        self.spans = spans
        #: address -> (wall_ms, cumulative request count) of the previous
        #: scrape; the QPS numerator/denominator.
        self._prev: dict[str, tuple[float, float]] = {}
        self.scrapes = 0

    def scrape(self) -> dict:
        """One polling pass over the current membership.

        Members the transport already knows are dead (refused a
        connection, or SWIM-suspected at ``hello`` time) are reported
        under ``down`` rather than attempted: without SWIM a killed peer
        stays in the mirrored member map forever, and a scrape that
        flags it as an *error* every pass would make the smoke drill's
        expected casualty indistinguishable from a live peer that
        stopped answering telemetry.
        """
        snapshots: dict[str, dict] = {}
        errors: dict[str, str] = {}
        down: list[str] = []
        id_bits = self.client.system.config.id_bits
        for address in sorted(self.client.system.members):
            node_id = node_id_for_address(address, id_bits)
            if not self.client.transport.is_alive(node_id):
                down.append(address)
                continue
            try:
                reply = self.client.telemetry_of(address, spans=self.spans)
            except ReproError as exc:
                errors[address] = type(exc).__name__
                continue
            if isinstance(reply, dict) and reply.get("version") is not None:
                snapshots[address] = reply
            else:
                errors[address] = "unparseable"
        self.scrapes += 1
        return self._merge(snapshots, errors, down)

    def _breaker_state(self, address: str) -> str:
        breaker = self.client.transport.breaker
        if breaker is None:
            return "-"
        node_id = node_id_for_address(
            address, self.client.system.config.id_bits
        )
        return breaker.state(node_id)

    def _merge(
        self,
        snapshots: dict[str, dict],
        errors: dict[str, str],
        down: list[str] | None = None,
    ) -> dict:
        now_wall = wall_ms()
        nodes: dict[str, dict] = {}
        requests_by_node: dict[str, float] = {}
        for address, snap in snapshots.items():
            metrics = snap.get("metrics") or {}
            requests = counter_total(metrics, "server.requests")
            requests_by_node[address] = requests
            prev = self._prev.get(address)
            qps = 0.0
            if prev is not None and now_wall > prev[0]:
                qps = max(0.0, requests - prev[1]) / ((now_wall - prev[0]) / 1000.0)
            self._prev[address] = (now_wall, requests)
            swim = snap.get("swim") or {}
            nodes[address] = {
                "node_id": snap.get("node_id"),
                "version": snap.get("version"),
                "requests": requests,
                "qps": qps,
                "queue_depth": snap.get("queue_depth", 0),
                "pending_repair": snap.get("pending_repair", 0),
                "census": snap.get("census") or {},
                "swim_epoch": swim.get("epoch"),
                "swim_states": swim.get("states") or {},
                "breaker": self._breaker_state(address),
                #: Positive: the node's wall clock runs ahead of ours.
                "clock_skew_ms": (
                    float(snap["captured_wall_ms"]) - now_wall
                    if isinstance(
                        snap.get("captured_wall_ms"), (int, float)
                    )
                    else None
                ),
                "spans": snap.get("spans") or [],
            }
        metric_docs = [
            snap.get("metrics") or {} for snap in snapshots.values()
        ]
        down = list(down or [])
        return {
            "at_wall_ms": now_wall,
            "nodes": nodes,
            "errors": errors,
            "down": down,
            "service_ms": cluster_histogram(metric_docs, "server.service_ms"),
            "load_skew": (
                load_skew(requests_by_node) if requests_by_node else 0.0
            ),
            #: Members we expected an answer from: known-dead peers are
            #: not in the denominator, so scraped == members means every
            #: reachable member produced a versioned snapshot.
            "members": len(self.client.system.members) - len(down),
            "scraped": len(nodes),
        }
