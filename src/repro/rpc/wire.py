"""The wire protocol of the socket transport.

Frames are length-prefixed JSON: a 4-byte big-endian payload length
followed by that many bytes of UTF-8 JSON.  JSON (not a binary codec)
keeps the protocol dependency-free and debuggable with ``nc``/``jq``;
the values that actually cross the wire are small (descriptors and match
scores — partition rows only travel on explicit fetches), so framing
overhead dominates encoding choice anyway.

One request/reply exchange::

    -> {"id": 7, "kind": "match-request", "sender": 123, "payload": ...}
    <- {"id": 7, "ok": true, "value": ...}
    <- {"id": 7, "ok": false, "error": "...", "error_type": "ConfigError"}

``payload``/``value`` carry the same Python objects the in-process
transports pass by reference — :class:`~repro.ranges.interval.IntRange`,
:class:`~repro.db.partition.PartitionDescriptor`,
:class:`~repro.db.partition.Partition` and tuples — encoded with explicit
type tags (``$range``, ``$desc``, ``$part``, ``$tuple``) so a round trip
reconstructs equal objects and the peer logic cannot tell which transport
delivered the message.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import struct
from typing import Any

from repro.core.config import SystemConfig
from repro.db.partition import Partition, PartitionDescriptor
from repro.errors import (
    ConfigError,
    PeerUnavailableError,
    ReproError,
    RequestTimeoutError,
    StorageError,
)
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange

__all__ = [
    "MAX_FRAME_BYTES",
    "encode_value",
    "decode_value",
    "write_frame",
    "read_frame",
    "call",
    "config_to_wire",
    "config_from_wire",
    "RemoteError",
    "WireError",
]

_LENGTH = struct.Struct("!I")

#: Upper bound on one frame's JSON body.  Far above any real message
#: (a full partition fetch of ~100k rows fits in a few MiB); present so a
#: corrupt or hostile length prefix cannot make a peer allocate blindly.
MAX_FRAME_BYTES = 32 * 1024 * 1024


class RemoteError(ReproError):
    """A peer answered an RPC with an error the client cannot map back
    to a library exception type."""


class WireError(ReproError, ValueError):
    """The byte stream violated the framing protocol.

    Raised for a length prefix past :data:`MAX_FRAME_BYTES`, a frame body
    that is not valid JSON (garbage bytes under a plausible prefix), a
    JSON body that is not an object, and a peer that died *mid-frame*
    (the prefix arrived but the body never completed).  A clean EOF
    before any prefix byte is not an error — :func:`read_frame` returns
    ``None`` for that — but every torn, oversized or corrupt frame
    surfaces as this one typed error so servers can drop the connection
    and clients can treat the peer as unavailable, and nothing ever
    hangs on a half-delivered frame.
    """


# ---------------------------------------------------------------------------
# Value codec
# ---------------------------------------------------------------------------

def encode_value(value: Any) -> Any:
    """Recursively encode a payload value into JSON-safe data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, IntRange):
        return {"$range": [value.start, value.end]}
    if isinstance(value, PartitionDescriptor):
        return {
            "$desc": [
                value.relation,
                value.attribute,
                value.range.start,
                value.range.end,
            ]
        }
    if isinstance(value, Partition):
        return {
            "$part": {
                "desc": encode_value(value.descriptor)["$desc"],
                "rows": [list(row) for row in value.rows],
            }
        }
    if isinstance(value, tuple):
        return {"$tuple": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): encode_value(item) for key, item in value.items()}
    raise TypeError(f"cannot encode {type(value).__name__} for the wire")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if not isinstance(value, dict):
        return value
    if "$range" in value:
        start, end = value["$range"]
        return IntRange(int(start), int(end))
    if "$desc" in value:
        relation, attribute, start, end = value["$desc"]
        return PartitionDescriptor(relation, attribute, IntRange(int(start), int(end)))
    if "$part" in value:
        body = value["$part"]
        relation, attribute, start, end = body["desc"]
        return Partition(
            descriptor=PartitionDescriptor(
                relation, attribute, IntRange(int(start), int(end))
            ),
            rows=tuple(tuple(row) for row in body["rows"]),
        )
    if "$tuple" in value:
        return tuple(decode_value(item) for item in value["$tuple"])
    return {key: decode_value(item) for key, item in value.items()}


def config_to_wire(config: SystemConfig) -> dict:
    """A :class:`~repro.core.config.SystemConfig` as a JSON-safe dict."""
    body = dataclasses.asdict(config)
    return body


def config_from_wire(body: dict) -> SystemConfig:
    """Rebuild a config sent by :func:`config_to_wire` (or typed by hand
    on a ``--config-json`` flag; missing fields take their defaults)."""
    data = dict(body)
    domain = data.pop("domain", None)
    known = {field.name for field in dataclasses.fields(SystemConfig)}
    unknown = set(data) - known
    if unknown:
        raise ConfigError(f"unknown config field(s): {sorted(unknown)}")
    if domain is not None:
        data["domain"] = Domain(
            str(domain["name"]), int(domain["low"]), int(domain["high"])
        )
    return SystemConfig(**data)


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

async def write_frame(writer: asyncio.StreamWriter, document: dict) -> None:
    """Send one length-prefixed JSON frame."""
    body = json.dumps(document, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
    writer.write(_LENGTH.pack(len(body)) + body)
    await writer.drain()


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on a clean EOF before the length prefix.

    Anything else that violates the framing — an oversized or torn frame,
    a body that is not a JSON object — raises :class:`WireError`.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise WireError(
            f"peer died {len(exc.partial)} byte(s) into a length prefix"
        ) from exc
    except ConnectionResetError:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"peer announced a {length}-byte frame; refusing")
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise WireError(
            f"peer died mid-frame ({length} bytes announced)"
        ) from exc
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise WireError(
            f"frame body is {type(document).__name__}, expected an object"
        )
    return document


# ---------------------------------------------------------------------------
# One-shot client call
# ---------------------------------------------------------------------------

#: Error types a peer may report, mapped back to library exceptions so
#: the engine's failover logic works unchanged over sockets.
_ERROR_TYPES = {
    "ConfigError": ConfigError,
    "StorageError": StorageError,
}


async def call(
    host: str,
    port: int,
    kind: str,
    payload: Any = None,
    *,
    sender: int = -1,
    sender_address: str | None = None,
    peer_id: int = -1,
    timeout_ms: float | None = None,
    trace: dict | None = None,
) -> Any:
    """One request/reply over a fresh connection.

    Raises :class:`~repro.errors.PeerUnavailableError` when the peer
    refuses the connection, hangs up mid-exchange, or answers with bytes
    that violate the framing, and
    :class:`~repro.errors.RequestTimeoutError` when ``timeout_ms`` elapses
    — the same exceptions the in-process transports use, so callers (the
    query engine above all) need no socket-specific handling.

    ``sender_address`` identifies the calling *peer* (servers calling
    servers set it); the chaos connection filter uses it to enforce
    partitions, and clients leave it unset.  ``trace`` is the optional
    distributed-trace envelope (:class:`repro.obs.distributed.TraceContext`
    wire form); peers that predate it ignore the extra field, so traced
    and untraced requests are interchangeable on the wire.
    """

    async def exchange() -> Any:
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as exc:
            raise PeerUnavailableError(peer_id) from exc
        try:
            request = {
                "id": 0, "kind": kind, "sender": sender,
                "payload": encode_value(payload),
            }
            if sender_address is not None:
                request["from"] = sender_address
            if trace is not None:
                request["trace"] = trace
            await write_frame(writer, request)
            reply = await read_frame(reader)
        except OSError as exc:
            raise PeerUnavailableError(peer_id) from exc
        except WireError as exc:
            raise PeerUnavailableError(peer_id) from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # pragma: no cover - teardown race
                pass
        if reply is None:
            raise PeerUnavailableError(peer_id)
        if reply.get("ok"):
            return decode_value(reply.get("value"))
        error_type = reply.get("error_type", "")
        message = reply.get("error", "remote peer reported an error")
        raise _ERROR_TYPES.get(error_type, RemoteError)(message)

    if timeout_ms is None:
        return await exchange()
    try:
        return await asyncio.wait_for(exchange(), timeout=timeout_ms / 1000.0)
    except asyncio.TimeoutError as exc:
        raise RequestTimeoutError(peer_id, 1, timeout_ms) from exc
