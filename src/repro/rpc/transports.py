"""Transport implementations for the unified query engine.

A :class:`Transport` is everything the engine needs from a network: a
clock, liveness, timers, one-hop routing charges, and a request/reply
primitive that settles a :class:`~repro.sim.futures.SimFuture`.  The two
in-process transports wrap the repo's existing networks:

- :class:`SyncTransport` wraps :class:`~repro.net.transport.SimulatedNetwork`.
  It has no clock of its own (``now()`` reads the cumulative simulated wire
  time), timers fire immediately, and requests settle before ``request()``
  returns — so the continuation-passing engine executes each lookup chain
  to completion before starting the next, reproducing the classic
  synchronous path exactly.
- :class:`SimTransport` wraps :class:`~repro.sim.network.AsyncNetwork` on a
  :class:`~repro.sim.kernel.Simulator`.  Timers and requests settle at
  later virtual instants, so the ``l`` chains genuinely interleave.

The third transport, :class:`repro.rpc.client.SocketTransport`, speaks real
asyncio TCP sockets and lives with the client (it needs the wire protocol
and a membership mirror).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.errors import PeerUnavailableError
from repro.net.transport import SimulatedNetwork, TrafficStats
from repro.sim.futures import SimFuture
from repro.sim.kernel import Simulator
from repro.sim.network import AsyncNetwork, RetryPolicy

__all__ = ["Transport", "SyncTransport", "SimTransport"]

#: Observer callback: ``(event_name, attrs)`` — the engine turns these into
#: ``net-*`` trace events on the active chain span.
Observer = Callable[[str, dict], None]


class _ImmediateHandle:
    """Cancellation handle for work that already ran (sync transport)."""

    def cancel(self) -> None:  # pragma: no cover - trivial
        pass


_DONE = _ImmediateHandle()


class Transport(ABC):
    """What the query engine needs from a network."""

    @property
    @abstractmethod
    def stats(self) -> TrafficStats:
        """The transport's traffic counters (messages, bytes, failovers)."""

    @abstractmethod
    def now(self) -> float:
        """The transport's clock, in milliseconds.

        Synchronous transports report cumulative simulated wire time, the
        event-driven transport virtual time, the socket transport wall
        time; the engine only ever subtracts two readings.
        """

    @abstractmethod
    def is_alive(self, peer_id: int) -> bool:
        """Whether ``peer_id`` is believed reachable."""

    @abstractmethod
    def call_later(self, delay_ms: float, fn: Callable[[], None]) -> Any:
        """Schedule ``fn`` after ``delay_ms``; returns a handle with
        ``cancel()``.  A clockless transport runs ``fn`` immediately."""

    @abstractmethod
    def hop(
        self, hop_from: int, hop_to: int, fn: Callable[[float], None]
    ) -> Any:
        """Charge one overlay routing edge, then run ``fn(delay_ms)`` at
        the instant the hop lands.  Returns a cancellable handle."""

    @abstractmethod
    def request(
        self,
        sender: int,
        recipient: int,
        kind: str,
        payload: Any = None,
        *,
        size_bytes: int = 64,
        rank: int = 0,
        observer: Observer | None = None,
        trace_ctx: Any = None,
    ) -> SimFuture:
        """One request/reply exchange; resolves with the handler's answer
        or rejects when the recipient is unreachable within its budget.

        ``rank`` is the replica rank of the attempt: rank 0 (the owner)
        runs under the transport's base retry policy, higher ranks under
        its single-attempt failover budget.  Transports without timers
        ignore policies — unreachable means an immediate rejection.

        ``trace_ctx`` is an optional distributed-trace context
        (:class:`repro.obs.distributed.TraceContext`).  Only transports
        that cross process boundaries propagate it; the in-process
        transports ignore it because their "peers" share the caller's
        trace object already.
        """


class SyncTransport(Transport):
    """The in-process, message-counting transport.

    Wraps the system's :class:`~repro.net.transport.SimulatedNetwork`:
    every exchange completes (and is charged) before the call returns, so
    the engine's continuations run depth-first and a query is fully
    resolved when ``engine.query(...)`` returns its (already settled)
    future.
    """

    def __init__(self, network: SimulatedNetwork) -> None:
        self.network = network

    @property
    def stats(self) -> TrafficStats:
        return self.network.stats

    def now(self) -> float:
        return self.network.stats.latency_ms

    def is_alive(self, peer_id: int) -> bool:
        return self.network.is_alive(peer_id)

    def call_later(self, delay_ms: float, fn: Callable[[], None]) -> Any:
        fn()
        return _DONE

    def hop(
        self, hop_from: int, hop_to: int, fn: Callable[[float], None]
    ) -> Any:
        delay = self.network.charge_route((hop_from, hop_to))
        fn(delay)
        return _DONE

    def request(
        self,
        sender: int,
        recipient: int,
        kind: str,
        payload: Any = None,
        *,
        size_bytes: int = 64,
        rank: int = 0,
        observer: Observer | None = None,
        trace_ctx: Any = None,
    ) -> SimFuture:
        future: SimFuture = SimFuture()
        if observer is not None:
            observer("send", {"attempt": 0, "to": recipient, "kind": kind})
        before = self.network.stats.latency_ms
        try:
            value = self.network.send(
                sender, recipient, kind, payload=payload, size_bytes=size_bytes
            )
        except PeerUnavailableError as exc:
            # No clock, no timeout: unreachability is known immediately,
            # the degenerate zero-budget case of the retry policy.
            future.reject(exc)
            return future
        if observer is not None:
            observer("reply", {"ms": self.network.stats.latency_ms - before})
        future.resolve(value)
        return future


class SimTransport(Transport):
    """The discrete-event transport: delays, drops, timeouts, retries."""

    def __init__(
        self,
        sim: Simulator,
        net: AsyncNetwork,
        policy: RetryPolicy | None = None,
        failover_policy: RetryPolicy | None = None,
    ) -> None:
        self.sim = sim
        self.net = net
        self.policy = policy if policy is not None else RetryPolicy()
        #: Budget for each failover attempt down the successor list: one
        #: try under the base timeout, so a chain's worst case grows
        #: linearly in replicas tried, not multiplicatively.
        self.failover_policy = (
            failover_policy
            if failover_policy is not None
            else RetryPolicy(
                timeout_ms=self.policy.timeout_ms, max_retries=0, backoff=1.0
            )
        )

    @property
    def stats(self) -> TrafficStats:
        return self.net.stats

    def now(self) -> float:
        return self.sim.now

    def is_alive(self, peer_id: int) -> bool:
        return self.net.is_alive(peer_id)

    def call_later(self, delay_ms: float, fn: Callable[[], None]) -> Any:
        return self.sim.call_later(delay_ms, fn)

    def hop(
        self, hop_from: int, hop_to: int, fn: Callable[[float], None]
    ) -> Any:
        delay = self.net.latency.sample_ms(hop_from, hop_to)
        self.net.stats.record_routing_hops(1, latency_ms=delay)
        return self.sim.call_later(delay, lambda: fn(delay))

    def request(
        self,
        sender: int,
        recipient: int,
        kind: str,
        payload: Any = None,
        *,
        size_bytes: int = 64,
        rank: int = 0,
        observer: Observer | None = None,
        trace_ctx: Any = None,
    ) -> SimFuture:
        return self.net.request(
            sender,
            recipient,
            kind,
            payload=payload,
            size_bytes=size_bytes,
            policy=self.policy if rank == 0 else self.failover_policy,
            observer=observer,
        )
