"""Workload generators.

The paper's evaluation uses "a set of 10,000 integer ranges with integers
in 0 and 1000 ... generated uniformly at random" with "only 0.2%
repetitions" (Section 5.1).  :class:`UniformRangeWorkload` reproduces that;
the skewed and clustered generators exist because real P2P query streams
are rarely uniform, and the extension experiments use them to show how the
scheme behaves when popular ranges repeat.
"""

from repro.workloads.generators import (
    ClusteredRangeWorkload,
    RangeWorkload,
    UniformRangeWorkload,
    ZipfRangeWorkload,
)
from repro.workloads.trace import WorkloadTrace

__all__ = [
    "RangeWorkload",
    "UniformRangeWorkload",
    "ZipfRangeWorkload",
    "ClusteredRangeWorkload",
    "WorkloadTrace",
]
