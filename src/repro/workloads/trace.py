"""Workload traces: record a generated stream, replay it, persist it.

Traces keep experiments honest: the same byte-for-byte query sequence can
be replayed against every hash family, so quality differences come from
hashing, never from workload noise.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import InvalidRangeError
from repro.ranges.interval import IntRange

__all__ = ["WorkloadTrace"]


class WorkloadTrace:
    """An immutable recorded sequence of query ranges."""

    def __init__(self, ranges: Iterable[IntRange]) -> None:
        self._ranges = tuple(ranges)

    def __iter__(self) -> Iterator[IntRange]:
        return iter(self._ranges)

    def __len__(self) -> int:
        return len(self._ranges)

    def __getitem__(self, index: int) -> IntRange:
        return self._ranges[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkloadTrace):
            return NotImplemented
        return self._ranges == other._ranges

    def __hash__(self) -> int:
        return hash(self._ranges)

    def warmup_split(self, fraction: float) -> tuple["WorkloadTrace", "WorkloadTrace"]:
        """Split into (warmup, measured) — the paper drops "a warmup period
        of [the] first 20% of the queries" from its statistics."""
        if not 0.0 <= fraction < 1.0:
            raise InvalidRangeError("warmup fraction must be within [0, 1)")
        cut = int(len(self._ranges) * fraction)
        return (WorkloadTrace(self._ranges[:cut]), WorkloadTrace(self._ranges[cut:]))

    # ------------------------------------------------------------------
    # Persistence (plain text, one "start end" pair per line)
    # ------------------------------------------------------------------

    def save(self, path: "str | Path") -> None:
        """Write the trace to a text file."""
        lines = [f"{r.start} {r.end}" for r in self._ranges]
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: "str | Path") -> "WorkloadTrace":
        """Read a trace previously written by :meth:`save`."""
        ranges: list[IntRange] = []
        for line_no, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1
        ):
            stripped = line.strip()
            if not stripped:
                continue
            parts = stripped.split()
            if len(parts) != 2:
                raise InvalidRangeError(
                    f"{path}:{line_no}: expected 'start end', got {stripped!r}"
                )
            ranges.append(IntRange(int(parts[0]), int(parts[1])))
        return cls(ranges)
