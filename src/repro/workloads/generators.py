"""Range-query workload generators."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

import numpy as np

from repro.errors import ConfigError
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange
from repro.util.rng import derive_rng

__all__ = [
    "RangeWorkload",
    "UniformRangeWorkload",
    "ZipfRangeWorkload",
    "ClusteredRangeWorkload",
]


class RangeWorkload(ABC):
    """A reproducible, finite stream of query ranges."""

    def __init__(self, domain: Domain, count: int, seed: int) -> None:
        if count <= 0:
            raise ConfigError("workload count must be positive")
        self.domain = domain
        self.count = count
        self.seed = seed

    @abstractmethod
    def _generate(self, rng: np.random.Generator) -> Iterator[IntRange]:
        """Yield ``self.count`` ranges."""

    def __iter__(self) -> Iterator[IntRange]:
        rng = derive_rng(self.seed, f"workload/{type(self).__name__}")
        yield from self._generate(rng)

    def __len__(self) -> int:
        return self.count

    def ranges(self) -> list[IntRange]:
        """The whole workload as a list."""
        return list(self)

    def repetition_fraction(self) -> float:
        """Fraction of queries that repeat an earlier query exactly.

        The paper reports 0.2% for its uniform workload; this lets tests
        check ours is in the same regime.
        """
        seen: set[IntRange] = set()
        repeats = 0
        for r in self:
            if r in seen:
                repeats += 1
            else:
                seen.add(r)
        return repeats / self.count


class UniformRangeWorkload(RangeWorkload):
    """Endpoints drawn uniformly from the domain (the paper's workload).

    Both endpoints are uniform over the domain; the pair is sorted, so the
    induced distribution over ``(start, end)`` with ``start <= end`` matches
    drawing an unordered pair uniformly.
    """

    def _generate(self, rng: np.random.Generator) -> Iterator[IntRange]:
        low, high = self.domain.low, self.domain.high
        a = rng.integers(low, high + 1, size=self.count)
        b = rng.integers(low, high + 1, size=self.count)
        starts = np.minimum(a, b)
        ends = np.maximum(a, b)
        for s, e in zip(starts, ends):
            yield IntRange(int(s), int(e))


class ZipfRangeWorkload(RangeWorkload):
    """A popularity-skewed workload: a pool of candidate ranges is drawn
    uniformly, then queries sample the pool with Zipf-distributed ranks.

    Under skew, popular ranges repeat, so exact cache hits become common —
    the regime where the paper's linear permutations catch up ("as the
    system evolves ... linear permutations will tend to produce better
    results", Section 5.1).
    """

    def __init__(
        self,
        domain: Domain,
        count: int,
        seed: int,
        pool_size: int = 1000,
        exponent: float = 1.1,
    ) -> None:
        super().__init__(domain, count, seed)
        if pool_size <= 0:
            raise ConfigError("pool_size must be positive")
        if exponent <= 1.0:
            raise ConfigError("zipf exponent must exceed 1.0")
        self.pool_size = pool_size
        self.exponent = exponent

    def _generate(self, rng: np.random.Generator) -> Iterator[IntRange]:
        low, high = self.domain.low, self.domain.high
        a = rng.integers(low, high + 1, size=self.pool_size)
        b = rng.integers(low, high + 1, size=self.pool_size)
        pool = [
            IntRange(int(min(x, y)), int(max(x, y))) for x, y in zip(a, b)
        ]
        produced = 0
        while produced < self.count:
            rank = int(rng.zipf(self.exponent))
            if rank > self.pool_size:
                continue
            yield pool[rank - 1]
            produced += 1


class ClusteredRangeWorkload(RangeWorkload):
    """Queries cluster around hot spots with jittered endpoints.

    Models users asking *similar but not identical* broad queries — the
    precise situation approximate matching is designed for.  Each query
    picks a cluster center and perturbs both endpoints by a small
    uniform jitter.
    """

    def __init__(
        self,
        domain: Domain,
        count: int,
        seed: int,
        n_clusters: int = 10,
        base_width: int = 100,
        jitter: int = 10,
    ) -> None:
        super().__init__(domain, count, seed)
        if n_clusters <= 0 or base_width <= 0 or jitter < 0:
            raise ConfigError("invalid cluster parameters")
        self.n_clusters = n_clusters
        self.base_width = base_width
        self.jitter = jitter

    def _generate(self, rng: np.random.Generator) -> Iterator[IntRange]:
        low, high = self.domain.low, self.domain.high
        centers = rng.integers(low, high + 1, size=self.n_clusters)
        for _ in range(self.count):
            center = int(centers[int(rng.integers(self.n_clusters))])
            half = self.base_width // 2
            start = center - half + int(rng.integers(-self.jitter, self.jitter + 1))
            end = center + half + int(rng.integers(-self.jitter, self.jitter + 1))
            start = max(low, min(start, high))
            end = max(start, min(end, high))
            yield IntRange(start, end)
