"""Adaptive request policies for the event-driven transport.

A static :class:`~repro.sim.network.RetryPolicy` treats every destination
and every moment alike: 400 ms of patience whether the peer answers in
5 ms or is drowning.  Under load that is exactly wrong — patience should
track the destination's *observed* behaviour.  This module provides the
three classic adaptive mechanisms, each deterministic under a fixed seed:

- :class:`AdaptiveTimeout` — per-destination Jacobson/Karn RTT estimation
  (EWMA of the round trip plus ``k`` deviations), clamped to a floor and
  ceiling, falling back to the static policy until enough samples arrived;
- :class:`JitteredBackoff` — exponentially growing, randomly jittered
  delays between retry attempts, so synchronized retries do not arrive at
  a struggling peer as a thundering herd (jitter drawn from a named
  :func:`~repro.util.rng.derive_rng` stream, so runs replay exactly);
- :class:`CircuitBreaker` — a per-destination closed → open → half-open
  state machine: after ``failure_threshold`` consecutive failures or busy
  replies the breaker opens and requests fail fast (no message, no retry
  budget spent); after ``cooldown_ms`` a single half-open probe is let
  through, and its outcome either re-closes or re-opens the circuit.

:class:`HedgePolicy` rounds out the set for the query layer: it watches a
live latency histogram and, once warm, yields the delay after which a
straggling lookup chain deserves a backup request (the tail percentile of
past chains), the standard "hedged request" tail-tolerance move.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.registry import HistogramMetric, MetricsRegistry

__all__ = [
    "AdaptiveTimeout",
    "JitteredBackoff",
    "CircuitBreaker",
    "HedgePolicy",
    "histogram_percentile",
]


class AdaptiveTimeout:
    """Per-destination timeout from Jacobson-style RTT estimation.

    Each destination keeps a smoothed RTT and a smoothed deviation,
    updated on every (unambiguous) reply::

        rttvar <- (1 - beta) * rttvar + beta * |srtt - rtt|
        srtt   <- (1 - alpha) * srtt + alpha * rtt

    and the suggested timeout is ``srtt + k * rttvar``, clamped into
    ``[floor_ms, ceiling_ms]``.  Until ``warmup`` samples have been seen
    for a destination, :meth:`timeout_ms` returns ``None`` and the caller
    falls back to its static policy — a cold estimator must not shrink
    patience below what an unknown peer deserves.
    """

    def __init__(
        self,
        k: float = 4.0,
        alpha: float = 0.125,
        beta: float = 0.25,
        floor_ms: float = 50.0,
        ceiling_ms: float = 2_000.0,
        warmup: int = 3,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if not 0.0 < alpha < 1.0 or not 0.0 < beta < 1.0:
            raise ValueError("alpha and beta must be in (0, 1)")
        if floor_ms <= 0 or ceiling_ms < floor_ms:
            raise ValueError("need 0 < floor_ms <= ceiling_ms")
        if warmup < 1:
            raise ValueError("warmup must be at least 1 sample")
        self.k = k
        self.alpha = alpha
        self.beta = beta
        self.floor_ms = floor_ms
        self.ceiling_ms = ceiling_ms
        self.warmup = warmup
        #: peer_id -> (srtt, rttvar, samples)
        self._estimates: dict[int, tuple[float, float, int]] = {}

    def observe(self, peer_id: int, rtt_ms: float) -> None:
        """Feed one measured round trip for ``peer_id``.

        Callers should follow Karn's rule and only feed RTTs that are
        unambiguously attributable to a single transmission.
        """
        if rtt_ms < 0:
            raise ValueError("rtt cannot be negative")
        state = self._estimates.get(peer_id)
        if state is None:
            self._estimates[peer_id] = (rtt_ms, rtt_ms / 2.0, 1)
            return
        srtt, rttvar, samples = state
        rttvar = (1.0 - self.beta) * rttvar + self.beta * abs(srtt - rtt_ms)
        srtt = (1.0 - self.alpha) * srtt + self.alpha * rtt_ms
        self._estimates[peer_id] = (srtt, rttvar, samples + 1)

    def samples(self, peer_id: int) -> int:
        """How many RTTs have been observed for ``peer_id``."""
        state = self._estimates.get(peer_id)
        return state[2] if state is not None else 0

    def srtt_ms(self, peer_id: int) -> float | None:
        """The smoothed RTT estimate, or None before any sample."""
        state = self._estimates.get(peer_id)
        return state[0] if state is not None else None

    def timeout_ms(self, peer_id: int) -> float | None:
        """The adaptive timeout for ``peer_id``, or None until warm."""
        state = self._estimates.get(peer_id)
        if state is None or state[2] < self.warmup:
            return None
        srtt, rttvar, _ = state
        return min(self.ceiling_ms, max(self.floor_ms, srtt + self.k * rttvar))

    def forget(self, peer_id: int) -> None:
        """Drop the estimate for a departed/recovered peer (idempotent)."""
        self._estimates.pop(peer_id, None)


class JitteredBackoff:
    """Exponential retry delays with deterministic jitter.

    Retry ``i`` (0-based) waits ``base_ms * factor**i`` scaled by a jitter
    draw uniform in ``[1 - jitter, 1]``, capped at ``cap_ms`` before
    jittering.  Drawing from a :func:`~repro.util.rng.derive_rng` stream
    named per instance keeps a seeded simulation bit-replayable while
    still desynchronizing the retries of different requesters (give each
    its own ``name``).
    """

    def __init__(
        self,
        base_ms: float = 50.0,
        factor: float = 2.0,
        jitter: float = 0.5,
        cap_ms: float = 5_000.0,
        seed: int = 0,
        name: str = "sim/backoff",
    ) -> None:
        if base_ms <= 0:
            raise ValueError("base delay must be positive")
        if factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if cap_ms < base_ms:
            raise ValueError("cap cannot undercut the base delay")
        from repro.util.rng import derive_rng

        self.base_ms = base_ms
        self.factor = factor
        self.jitter = jitter
        self.cap_ms = cap_ms
        self._rng = derive_rng(seed, name)

    def delay_ms(self, retry: int) -> float:
        """The wait before 0-based retry number ``retry`` (consumes one
        jitter draw, so call exactly once per scheduled retry)."""
        if retry < 0:
            raise ValueError("retry index cannot be negative")
        nominal = min(self.cap_ms, self.base_ms * self.factor**retry)
        if self.jitter == 0.0:
            return nominal
        scale = 1.0 - self.jitter * float(self._rng.random())
        return nominal * scale


#: Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class _BreakerState:
    __slots__ = ("state", "failures", "opened_at", "probing")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.probing = False


class CircuitBreaker:
    """Per-destination closed → open → half-open failure isolation.

    ``allow(peer)`` gates every send: a closed breaker always admits; an
    open one refuses (fail-fast, counted as ``<ns>.fast_failures``) until
    ``cooldown_ms`` of virtual time has passed, at which point exactly one
    half-open *probe* is admitted.  The probe's outcome — reported via
    :meth:`record_success` / :meth:`record_failure`, like every attempt —
    re-closes the circuit or re-opens it for another cooldown.

    ``transition_hook(peer_id, old_state, new_state)``, when set, fires on
    every state change (the query layer uses it for ``breaker-open`` trace
    events).  Transition tallies are published to the registry as
    ``<namespace>.opened`` / ``reclosed`` / ``probes`` / ``fast_failures``
    plus the ``<namespace>.open_now`` gauge.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        failure_threshold: int = 5,
        cooldown_ms: float = 2_000.0,
        registry: MetricsRegistry | None = None,
        namespace: str = "sim.breaker",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure threshold must be at least 1")
        if cooldown_ms <= 0:
            raise ValueError("cooldown must be positive")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self.registry = registry if registry is not None else MetricsRegistry()
        self._opened = self.registry.counter(
            f"{namespace}.opened", help="breaker transitions into open"
        )
        self._reclosed = self.registry.counter(
            f"{namespace}.reclosed", help="half-open probes that re-closed a breaker"
        )
        self._probes = self.registry.counter(
            f"{namespace}.probes", help="half-open probe requests admitted"
        )
        self._fast_failures = self.registry.counter(
            f"{namespace}.fast_failures", help="requests refused by an open breaker"
        )
        self._open_now = self.registry.gauge(
            f"{namespace}.open_now", help="breakers currently open or half-open"
        )
        self.transition_hook: Callable[[int, str, str], None] | None = None
        self._peers: dict[int, _BreakerState] = {}

    def _state_of(self, peer_id: int) -> _BreakerState:
        state = self._peers.get(peer_id)
        if state is None:
            state = _BreakerState()
            self._peers[peer_id] = state
        return state

    def _transition(self, peer_id: int, state: _BreakerState, new: str) -> None:
        old = state.state
        if old == new:
            return
        state.state = new
        if new == OPEN and old == CLOSED:
            self._open_now.inc()
        elif new == CLOSED:
            self._open_now.inc(-1)
        if self.transition_hook is not None:
            self.transition_hook(peer_id, old, new)

    def state(self, peer_id: int) -> str:
        """Current state name for ``peer_id`` (closed/open/half-open)."""
        state = self._peers.get(peer_id)
        return state.state if state is not None else CLOSED

    def open_peers(self) -> frozenset[int]:
        """Peers whose breaker is currently open or half-open."""
        return frozenset(
            pid for pid, s in self._peers.items() if s.state != CLOSED
        )

    def allow(self, peer_id: int) -> bool:
        """Whether a request to ``peer_id`` may be sent right now.

        Refusals are counted; an open breaker past its cooldown admits a
        single probe (and refuses everything else until it settles).
        """
        state = self._peers.get(peer_id)
        if state is None or state.state == CLOSED:
            return True
        if state.state == OPEN:
            if self.clock() - state.opened_at >= self.cooldown_ms:
                self._transition(peer_id, state, HALF_OPEN)
                state.probing = True
                self._probes.inc()
                return True
            self._fast_failures.inc()
            return False
        # half-open: one probe in flight, everyone else waits
        self._fast_failures.inc()
        return False

    def record_success(self, peer_id: int) -> None:
        """An attempt to ``peer_id`` got a genuine reply."""
        state = self._peers.get(peer_id)
        if state is None:
            return
        state.failures = 0
        state.probing = False
        if state.state != CLOSED:
            self._transition(peer_id, state, CLOSED)
            self._reclosed.inc()

    def record_failure(self, peer_id: int) -> None:
        """An attempt to ``peer_id`` timed out or came back busy."""
        state = self._state_of(peer_id)
        if state.state == HALF_OPEN:
            # The probe failed: straight back to open for another cooldown.
            state.probing = False
            state.opened_at = self.clock()
            self._transition(peer_id, state, OPEN)
            self._opened.inc()
            return
        if state.state == OPEN:
            return  # stragglers from before the breaker opened
        state.failures += 1
        if state.failures >= self.failure_threshold:
            state.opened_at = self.clock()
            self._transition(peer_id, state, OPEN)
            self._opened.inc()

    def reset(self, peer_id: int) -> None:
        """Forget all state for ``peer_id`` (e.g. after it rejoined)."""
        state = self._peers.pop(peer_id, None)
        if state is not None and state.state != CLOSED:
            self._open_now.inc(-1)


def histogram_percentile(
    histogram: HistogramMetric, q: float, **labels: object
) -> float | None:
    """The ``q``-th percentile of one histogram series, bucket resolution.

    Returns the upper edge of the bucket holding the ``q``-th percentile
    sample (conservative: the true value is at most this), the recorded
    maximum for samples past the last edge, or None for an empty series.
    """
    if not 0.0 < q <= 100.0:
        raise ValueError("percentile must be in (0, 100]")
    series = None
    for series_labels, state in histogram.items():
        if series_labels == labels:
            series = state
            break
    if series is None or series["count"] == 0:
        return None
    rank = q / 100.0 * series["count"]
    seen = 0
    for index, count in enumerate(series["counts"]):
        seen += count
        if seen >= rank:
            if index < len(histogram.edges):
                return float(histogram.edges[index])
            return float(series["max"])
    return float(series["max"])


class HedgePolicy:
    """When to launch a backup request for a straggling lookup chain.

    The policy owns a live histogram of past chain latencies (published to
    the registry as ``sim.query.chain_ms``); once at least ``min_samples``
    chains have been observed, :meth:`delay_ms` yields the ``percentile``
    tail latency (clamped to ``[floor_ms, ceiling_ms]``) — a chain still
    unanswered after that long is in the tail, and a hedge down the
    replica list is worth its extra message.  Before warmup it yields
    ``None``: hedging off, no guessing.
    """

    def __init__(
        self,
        percentile: float = 95.0,
        min_samples: int = 20,
        floor_ms: float = 50.0,
        ceiling_ms: float = 5_000.0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if not 0.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        if min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        if floor_ms <= 0 or ceiling_ms < floor_ms:
            raise ValueError("need 0 < floor_ms <= ceiling_ms")
        self.percentile = percentile
        self.min_samples = min_samples
        self.floor_ms = floor_ms
        self.ceiling_ms = ceiling_ms
        self.registry = registry if registry is not None else MetricsRegistry()
        self._chain_ms = self.registry.histogram(
            "sim.query.chain_ms", help="per-chain match latency samples"
        )

    def observe(self, chain_ms: float) -> None:
        """Feed the match-phase latency of one completed chain."""
        self._chain_ms.observe(chain_ms)

    @property
    def warm(self) -> bool:
        """Whether enough chains were observed to trust the tail."""
        return self._chain_ms.count() >= self.min_samples

    def delay_ms(self) -> float | None:
        """Hedge delay for the next chain, or None until warm."""
        if not self.warm:
            return None
        tail = histogram_percentile(self._chain_ms, self.percentile)
        assert tail is not None
        return min(self.ceiling_ms, max(self.floor_ms, tail))
