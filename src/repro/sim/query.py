"""The event-driven query path.

The synchronous :meth:`RangeSelectionSystem.query` resolves the ``l``
identifier lookups one after another, which is right for hop *counts* but
says nothing about wall-clock time.  Here the same query procedure runs on
the simulation kernel: every lookup chain (route hop by hop to the owner,
then a match request under a timeout/retry policy) progresses concurrently
in virtual time, so a query completes when its *slowest* chain does — the
paper's ``O(log N)`` wall-clock claim — and a crashed owner costs one
timed-out chain, not a hung query.

The procedure itself lives in :class:`repro.rpc.engine.QueryEngine` — the
one implementation shared with the synchronous and socket paths — bound
here to a :class:`~repro.rpc.transports.SimTransport` over an
:class:`~repro.sim.network.AsyncNetwork`.  This module keeps the
simulation-facing surface: fault control, seeded origin choice, open-loop
workloads, and the config-gated overload protections.

Phase accounting per query:

- ``route_ms``  — the slowest chain's hop-by-hop routing time;
- ``match_ms``  — the rest of the locate span (request round trips,
  retries, timeout waits);
- ``fetch_ms``  — retrieving the winning partition's rows (when enabled);
- ``store_ms``  — the store-on-miss fan-out to the ``l`` owners;
- ``total_ms``  — end-to-end virtual time, = locate + fetch + store spans.

Because completion is the *max* over chains, one stalled owner is the whole
query's latency — which makes this layer the right home for the two
tail-tolerance moves (both off by default, enabled via
:class:`~repro.core.config.SystemConfig`):

- **hedged lookups** (``config.hedge``): a chain still unanswered at the
  live p95 of past chains (see :class:`~repro.sim.policies.HedgePolicy`)
  launches a backup request at the next replica down the successor list;
  first answer wins and the loser is cancelled;
- **partial quorum** (``config.quorum = m``): the query answers once ``m``
  of the ``l`` chains replied, provided the best match already clears
  ``config.quorum_threshold`` — the remaining chains are cancelled and the
  result is flagged ``partial``.
"""

from __future__ import annotations

from repro.core.system import (
    SIM_ATTRIBUTE,
    SIM_RELATION,
    RangeSelectionSystem,
)
from repro.net.latency import LatencyModel, SeededLatency
from repro.obs.log import get_logger
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import QueryTrace
from repro.ranges.interval import IntRange
from repro.rpc.engine import ChainOutcome, QueryEngine, TimedQueryResult
from repro.rpc.transports import SimTransport
from repro.sim.futures import SimFuture
from repro.sim.kernel import Simulator
from repro.sim.network import AsyncNetwork, RetryPolicy
from repro.sim.policies import (
    AdaptiveTimeout,
    CircuitBreaker,
    HedgePolicy,
    JitteredBackoff,
)
from repro.util.rng import derive_rng

__all__ = ["AsyncQueryEngine", "ChainOutcome", "TimedQueryResult"]

logger = get_logger("sim.query")


class AsyncQueryEngine:
    """Runs a system's query procedure on the discrete-event kernel.

    The engine shares the system's peers, stores, router and hash scheme —
    only the transport differs.  Synchronous calls on the system (warmup,
    churn helpers) remain valid between event-driven queries.
    """

    def __init__(
        self,
        system: RangeSelectionSystem,
        sim: Simulator | None = None,
        latency: LatencyModel | None = None,
        drop_probability: float = 0.0,
        policy: RetryPolicy | None = None,
        failover_policy: RetryPolicy | None = None,
        seed: int | None = None,
        fetch_rows: bool = False,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.system = system
        self.sim = sim if sim is not None else Simulator()
        if seed is None:
            seed = system.config.seed
        if latency is None:
            latency = SeededLatency(seed=seed)
        config = system.config
        bound_registry = registry if registry is not None else system.metrics
        # The engine's transport publishes into the system's unified
        # registry (as "sim.net.*") unless told otherwise.
        self.net = AsyncNetwork(
            self.sim,
            latency=latency,
            drop_probability=drop_probability,
            seed=seed,
            registry=bound_registry,
            queue_capacity=config.peer_queue,
            service_time_ms=(
                1000.0 / config.service_rate if config.service_rate > 0 else 0.0
            ),
        )
        # Overload protections, all config-gated so the default config
        # leaves the event-driven path byte-identical to the base model.
        if config.adaptive_timeout:
            self.net.adaptive = AdaptiveTimeout()
            self.net.backoff = JitteredBackoff(seed=seed, name="sim/backoff")
        if config.breaker:
            self.net.breaker = CircuitBreaker(
                clock=lambda: self.sim.now, registry=bound_registry
            )
            self.net.breaker.transition_hook = (
                lambda peer, old, new: logger.info(
                    "breaker for peer %d: %s -> %s at t=%.1f",
                    peer, old, new, self.sim.now,
                )
            )
        self.quorum_m = config.quorum
        self.quorum_threshold = config.quorum_threshold
        self.policy = policy if policy is not None else RetryPolicy()
        # The hedge delay is capped at the retry timeout: waiting longer
        # than the timeout to launch a backup is pointless, because at the
        # timeout the original attempt retries or fails over anyway.  The
        # cap also keeps the live-p95 trigger useful when stragglers are
        # common enough (>5% of chains) to contaminate the p95 itself.
        self.hedge: HedgePolicy | None = (
            HedgePolicy(registry=bound_registry, ceiling_ms=self.policy.timeout_ms)
            if config.hedge
            else None
        )
        #: Budget for each *failover* attempt down the successor list.  The
        #: default gives every replica one try under the base timeout (no
        #: retries), so a chain's worst case grows linearly in replicas
        #: tried, not multiplicatively.
        self.failover_policy = (
            failover_policy
            if failover_policy is not None
            else RetryPolicy(
                timeout_ms=self.policy.timeout_ms, max_retries=0, backoff=1.0
            )
        )
        self.fetch_rows = fetch_rows
        for node_id in system.router.node_ids:
            self.net.register(node_id, system.peer_handler(node_id))
        self._rng = derive_rng(seed, "sim/origins")
        self.transport = SimTransport(
            self.sim, self.net,
            policy=self.policy, failover_policy=self.failover_policy,
        )
        self._engine = QueryEngine(
            system,
            self.transport,
            quorum_m=self.quorum_m,
            quorum_threshold=self.quorum_threshold,
            hedge=self.hedge,
            fetch_rows=fetch_rows,
        )

    # -- fault control -------------------------------------------------

    def crash_peer(self, peer_id: int) -> None:
        """Fail-stop one peer for subsequent (and in-flight) deliveries."""
        self.net.crash(peer_id)

    def recover_peer(self, peer_id: int) -> None:
        """Bring a crashed peer back."""
        self.net.recover(peer_id)

    def slow_peer(
        self,
        peer_id: int,
        latency_factor: float = 1.0,
        service_factor: float = 1.0,
    ) -> None:
        """Grey-fail one peer: inflate its link latency and service time."""
        self.net.faults.slow(peer_id, latency_factor, service_factor)

    def unslow_peer(self, peer_id: int) -> None:
        """Restore a grey-failed peer to full speed."""
        self.net.faults.unslow(peer_id)

    def pick_origin(self) -> int:
        """A uniformly random *alive* querying peer."""
        alive = [nid for nid in self.system.router.node_ids if self.net.is_alive(nid)]
        if not alive:
            raise RuntimeError("no alive peer can originate a query")
        return alive[int(self._rng.integers(len(alive)))]

    # -- the query procedure -------------------------------------------

    def start_trace(self, query: IntRange | None = None, **attrs) -> QueryTrace:
        """A :class:`~repro.obs.QueryTrace` on the simulator's clock.

        Timestamps are virtual milliseconds (``sim.now``), so span
        durations line up with the phase timings of
        :class:`TimedQueryResult`.  Pass the trace to :meth:`query` /
        :meth:`run`.
        """
        if query is not None:
            attrs.setdefault("query", str(query))
        attrs.setdefault("path", "sim")
        return QueryTrace(clock=lambda: self.sim.now, **attrs)

    def query(
        self,
        query: IntRange,
        relation: str = SIM_RELATION,
        attribute: str = SIM_ATTRIBUTE,
        origin: int | None = None,
        padding: float | None = None,
        trace: QueryTrace | None = None,
    ) -> SimFuture[TimedQueryResult]:
        """Schedule one full query; resolves when all phases finish.

        Drive the simulator (``engine.sim.run()`` or :meth:`run`) to make
        virtual time pass.  A ``trace`` (from :meth:`start_trace`) records
        the whole lifecycle — every chain's route hops, each replica
        attempt with its retries/timeouts, the store fan-out — with events
        timestamped at the virtual instant they happen.
        """
        if origin is None:
            origin = self.pick_origin()
        return self._engine.query(
            query, relation, attribute, origin,
            padding=padding, trace=trace,
        )

    def run(
        self,
        query: IntRange,
        relation: str = SIM_RELATION,
        attribute: str = SIM_ATTRIBUTE,
        origin: int | None = None,
        padding: float | None = None,
        trace: QueryTrace | None = None,
    ) -> TimedQueryResult:
        """Convenience: schedule one query and drive the clock to its end."""
        future = self.query(
            query, relation, attribute, origin=origin, padding=padding,
            trace=trace,
        )
        return self.sim.run_until_complete(future)

    def run_open_loop(
        self,
        queries: "list[IntRange]",
        interval_ms: float,
        relation: str = SIM_RELATION,
        attribute: str = SIM_ATTRIBUTE,
    ) -> list[TimedQueryResult]:
        """Issue queries at a fixed arrival rate and run all to completion.

        Query ``i`` *starts* at ``now + i * interval_ms`` regardless of
        whether earlier queries have finished — an open-loop workload, the
        shape that exposes overload: a closed loop (issue, wait, issue)
        self-throttles when the system slows down, hiding collapse.
        Origins are pre-drawn (one per query, in issue order) so the
        schedule is deterministic under a fixed seed.  Returns results in
        issue order.
        """
        if interval_ms < 0:
            raise ValueError("arrival interval cannot be negative")
        if not queries:
            return []
        origins = [self.pick_origin() for _ in queries]
        results: list[TimedQueryResult | None] = [None] * len(queries)
        remaining = [len(queries)]
        all_done: SimFuture[None] = SimFuture()

        def launch(index: int) -> None:
            future = self.query(
                queries[index], relation, attribute, origin=origins[index]
            )

            def on_done(settled: SimFuture, index: int = index) -> None:
                results[index] = settled.result()
                remaining[0] -= 1
                if remaining[0] == 0:
                    all_done.resolve(None)

            future.add_done_callback(on_done)

        base = self.sim.now
        for index in range(len(queries)):
            self.sim.call_at(
                base + index * interval_ms, lambda index=index: launch(index)
            )
        self.sim.run_until_complete(all_done)
        return [result for result in results if result is not None]
