"""The event-driven query path.

The synchronous :meth:`RangeSelectionSystem.query` resolves the ``l``
identifier lookups one after another, which is right for hop *counts* but
says nothing about wall-clock time.  Here the same query procedure runs on
the simulation kernel: every lookup chain (route hop by hop to the owner,
then a match request under a timeout/retry policy) progresses concurrently
in virtual time, so a query completes when its *slowest* chain does — the
paper's ``O(log N)`` wall-clock claim — and a crashed owner costs one
timed-out chain, not a hung query.

Phase accounting per query:

- ``route_ms``  — the slowest chain's hop-by-hop routing time;
- ``match_ms``  — the rest of the locate span (request round trips,
  retries, timeout waits);
- ``fetch_ms``  — retrieving the winning partition's rows (when enabled);
- ``store_ms``  — the store-on-miss fan-out to the ``l`` owners;
- ``total_ms``  — end-to-end virtual time, = locate + fetch + store spans.

Because completion is the *max* over chains, one stalled owner is the whole
query's latency — which makes this layer the right home for the two
tail-tolerance moves (both off by default, enabled via
:class:`~repro.core.config.SystemConfig`):

- **hedged lookups** (``config.hedge``): a chain still unanswered at the
  live p95 of past chains (see :class:`~repro.sim.policies.HedgePolicy`)
  launches a backup request at the next replica down the successor list;
  first answer wins and the loser is cancelled;
- **partial quorum** (``config.quorum = m``): the query answers once ``m``
  of the ``l`` chains replied, provided the best match already clears
  ``config.quorum_threshold`` — the remaining chains are cancelled and the
  result is flagged ``partial``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import (
    SIM_ATTRIBUTE,
    SIM_RELATION,
    MatchReply,
    RangeSelectionSystem,
)
from repro.db.partition import Partition, PartitionDescriptor
from repro.net.latency import LatencyModel, SeededLatency
from repro.obs.log import get_logger
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACE, QueryTrace, Span
from repro.ranges.interval import IntRange
from repro.sim.futures import SimFuture, gather
from repro.sim.kernel import Simulator, Timer
from repro.sim.network import AsyncNetwork, RetryPolicy
from repro.sim.policies import (
    AdaptiveTimeout,
    CircuitBreaker,
    HedgePolicy,
    JitteredBackoff,
)
from repro.util.rng import derive_rng

__all__ = ["AsyncQueryEngine", "ChainOutcome", "TimedQueryResult"]

logger = get_logger("sim.query")


@dataclass(frozen=True)
class ChainOutcome:
    """One identifier lookup chain, timed."""

    identifier: int
    #: The identifier's nominal owner (the peer routing arrived at); under
    #: failover the answering peer is ``reply.peer_id`` instead.
    owner: int
    hops: int
    #: Hop-by-hop routing time of this chain.
    route_ms: float
    #: Reply from whichever replica answered; None when every candidate's
    #: budget ran out.
    reply: MatchReply | None
    #: Virtual time from query start until this chain settled.
    completed_ms: float
    timed_out: bool
    #: Failover steps taken down the successor list (0 = owner answered).
    failovers: int = 0
    #: Whether the answer came from a hedged (backup) lookup.
    hedged: bool = False


@dataclass(frozen=True)
class TimedQueryResult:
    """Outcome of one event-driven query, with phase timings."""

    query: IntRange
    hashed_query: IntRange
    matched: PartitionDescriptor | None
    similarity: float
    recall: float
    matcher_score: float
    exact: bool
    stored: bool
    chains: tuple[ChainOutcome, ...]
    #: Chains that exhausted every replica's retry budget (<= l).
    timeouts: int
    #: Chains answered by a successor-list replica after the owner was
    #: unreachable.
    failovers: int
    #: Store-on-miss placements that themselves timed out.
    store_failures: int
    route_ms: float
    match_ms: float
    locate_ms: float
    fetch_ms: float
    store_ms: float
    total_ms: float
    #: Whether a partial quorum answered early (remaining chains cancelled).
    partial: bool = False
    fetched: Partition | None = None

    @property
    def found(self) -> bool:
        """Whether any candidate partition was located."""
        return self.matched is not None

    @property
    def degraded(self) -> bool:
        """Whether the answer came from fewer than ``l`` replies."""
        return self.timeouts > 0 or self.partial


class AsyncQueryEngine:
    """Runs a system's query procedure on the discrete-event kernel.

    The engine shares the system's peers, stores, router and hash scheme —
    only the transport differs.  Synchronous calls on the system (warmup,
    churn helpers) remain valid between event-driven queries.
    """

    def __init__(
        self,
        system: RangeSelectionSystem,
        sim: Simulator | None = None,
        latency: LatencyModel | None = None,
        drop_probability: float = 0.0,
        policy: RetryPolicy | None = None,
        failover_policy: RetryPolicy | None = None,
        seed: int | None = None,
        fetch_rows: bool = False,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.system = system
        self.sim = sim if sim is not None else Simulator()
        if seed is None:
            seed = system.config.seed
        if latency is None:
            latency = SeededLatency(seed=seed)
        config = system.config
        bound_registry = registry if registry is not None else system.metrics
        # The engine's transport publishes into the system's unified
        # registry (as "sim.net.*") unless told otherwise.
        self.net = AsyncNetwork(
            self.sim,
            latency=latency,
            drop_probability=drop_probability,
            seed=seed,
            registry=bound_registry,
            queue_capacity=config.peer_queue,
            service_time_ms=(
                1000.0 / config.service_rate if config.service_rate > 0 else 0.0
            ),
        )
        # Overload protections, all config-gated so the default config
        # leaves the event-driven path byte-identical to the base model.
        if config.adaptive_timeout:
            self.net.adaptive = AdaptiveTimeout()
            self.net.backoff = JitteredBackoff(seed=seed, name="sim/backoff")
        if config.breaker:
            self.net.breaker = CircuitBreaker(
                clock=lambda: self.sim.now, registry=bound_registry
            )
            self.net.breaker.transition_hook = (
                lambda peer, old, new: logger.info(
                    "breaker for peer %d: %s -> %s at t=%.1f",
                    peer, old, new, self.sim.now,
                )
            )
        self.quorum_m = config.quorum
        self.quorum_threshold = config.quorum_threshold
        self.policy = policy if policy is not None else RetryPolicy()
        # The hedge delay is capped at the retry timeout: waiting longer
        # than the timeout to launch a backup is pointless, because at the
        # timeout the original attempt retries or fails over anyway.  The
        # cap also keeps the live-p95 trigger useful when stragglers are
        # common enough (>5% of chains) to contaminate the p95 itself.
        self.hedge: HedgePolicy | None = (
            HedgePolicy(registry=bound_registry, ceiling_ms=self.policy.timeout_ms)
            if config.hedge
            else None
        )
        #: Budget for each *failover* attempt down the successor list.  The
        #: default gives every replica one try under the base timeout (no
        #: retries), so a chain's worst case grows linearly in replicas
        #: tried, not multiplicatively.
        self.failover_policy = (
            failover_policy
            if failover_policy is not None
            else RetryPolicy(
                timeout_ms=self.policy.timeout_ms, max_retries=0, backoff=1.0
            )
        )
        self.fetch_rows = fetch_rows
        for node_id in system.router.node_ids:
            self.net.register(node_id, system.peer_handler(node_id))
        self._rng = derive_rng(seed, "sim/origins")

    # -- fault control -------------------------------------------------

    def crash_peer(self, peer_id: int) -> None:
        """Fail-stop one peer for subsequent (and in-flight) deliveries."""
        self.net.crash(peer_id)

    def recover_peer(self, peer_id: int) -> None:
        """Bring a crashed peer back."""
        self.net.recover(peer_id)

    def slow_peer(
        self,
        peer_id: int,
        latency_factor: float = 1.0,
        service_factor: float = 1.0,
    ) -> None:
        """Grey-fail one peer: inflate its link latency and service time."""
        self.net.faults.slow(peer_id, latency_factor, service_factor)

    def unslow_peer(self, peer_id: int) -> None:
        """Restore a grey-failed peer to full speed."""
        self.net.faults.unslow(peer_id)

    def pick_origin(self) -> int:
        """A uniformly random *alive* querying peer."""
        alive = [nid for nid in self.system.router.node_ids if self.net.is_alive(nid)]
        if not alive:
            raise RuntimeError("no alive peer can originate a query")
        return alive[int(self._rng.integers(len(alive)))]

    # -- the query procedure -------------------------------------------

    def start_trace(self, query: IntRange | None = None, **attrs) -> QueryTrace:
        """A :class:`~repro.obs.QueryTrace` on the simulator's clock.

        Timestamps are virtual milliseconds (``sim.now``), so span
        durations line up with the phase timings of
        :class:`TimedQueryResult`.  Pass the trace to :meth:`query` /
        :meth:`run`.
        """
        if query is not None:
            attrs.setdefault("query", str(query))
        attrs.setdefault("path", "sim")
        return QueryTrace(clock=lambda: self.sim.now, **attrs)

    def query(
        self,
        query: IntRange,
        relation: str = SIM_RELATION,
        attribute: str = SIM_ATTRIBUTE,
        origin: int | None = None,
        padding: float | None = None,
        trace: QueryTrace | None = None,
    ) -> SimFuture[TimedQueryResult]:
        """Schedule one full query; resolves when all phases finish.

        Drive the simulator (``engine.sim.run()`` or :meth:`run`) to make
        virtual time pass.  A ``trace`` (from :meth:`start_trace`) records
        the whole lifecycle — every chain's route hops, each replica
        attempt with its retries/timeouts, the store fan-out — with events
        timestamped at the virtual instant they happen.
        """
        trace = trace if trace is not None else NULL_TRACE
        system = self.system
        config = system.config
        if origin is None:
            origin = self.pick_origin()
        effective_padding = config.padding if padding is None else padding
        hashed_query = query
        if effective_padding > 0:
            hashed_query = query.pad(
                effective_padding,
                lower_bound=config.domain.low,
                upper_bound=config.domain.high,
            )
            trace.event(
                "padded", padding=effective_padding, hashed=str(hashed_query)
            )
        started = self.sim.now
        with trace.span("hash") as hash_span:
            identifiers = system.identifiers_for(hashed_query)
            for group, identifier in enumerate(identifiers):
                hash_span.event(
                    "group",
                    group=group,
                    identifier=identifier,
                    placed=system.place_identifier(identifier),
                )
        locate_span = trace.span("locate", origin=origin)
        chain_futures = [
            self._run_chain(
                origin, identifier, hashed_query, relation, attribute,
                started, parent=locate_span,
            )
            for identifier in identifiers
        ]
        out: SimFuture[TimedQueryResult] = SimFuture()

        def locate(chains: list[ChainOutcome], partial: bool) -> None:
            self._after_locate(
                chains, query, hashed_query, relation, attribute,
                origin, started, out, trace, locate_span, partial=partial,
            )

        m = self.quorum_m
        if m and m < len(chain_futures):
            # Partial quorum: answer as soon as m chains replied with a
            # good-enough best match; the stragglers are cancelled.
            threshold = self.quorum_threshold
            outcomes: list[ChainOutcome] = []
            remaining = [len(chain_futures)]
            completing = [False]

            def on_chain(settled: SimFuture) -> None:
                remaining[0] -= 1
                if completing[0]:
                    return  # a cancellation triggered by early completion
                if not settled.failed:
                    outcomes.append(settled.result())
                answered = sum(1 for c in outcomes if c.reply is not None)
                best = max(
                    (
                        c.reply.score
                        for c in outcomes
                        if c.reply is not None and c.reply.descriptor is not None
                    ),
                    default=None,
                )
                if (
                    remaining[0] > 0
                    and answered >= m
                    and best is not None
                    and best >= threshold
                ):
                    completing[0] = True
                    locate_span.event(
                        "quorum",
                        answered=answered,
                        cancelled=remaining[0],
                        best_score=best,
                    )
                    for chain_future in chain_futures:
                        chain_future.cancel()
                    locate(list(outcomes), partial=True)
                elif remaining[0] == 0:
                    completing[0] = True
                    locate(list(outcomes), partial=False)

            for chain_future in chain_futures:
                chain_future.add_done_callback(on_chain)
        else:
            gather(chain_futures).add_done_callback(
                lambda settled: locate(settled.result(), False)
            )
        return out

    def run(
        self,
        query: IntRange,
        relation: str = SIM_RELATION,
        attribute: str = SIM_ATTRIBUTE,
        origin: int | None = None,
        padding: float | None = None,
        trace: QueryTrace | None = None,
    ) -> TimedQueryResult:
        """Convenience: schedule one query and drive the clock to its end."""
        future = self.query(
            query, relation, attribute, origin=origin, padding=padding,
            trace=trace,
        )
        return self.sim.run_until_complete(future)

    def run_open_loop(
        self,
        queries: "list[IntRange]",
        interval_ms: float,
        relation: str = SIM_RELATION,
        attribute: str = SIM_ATTRIBUTE,
    ) -> list[TimedQueryResult]:
        """Issue queries at a fixed arrival rate and run all to completion.

        Query ``i`` *starts* at ``now + i * interval_ms`` regardless of
        whether earlier queries have finished — an open-loop workload, the
        shape that exposes overload: a closed loop (issue, wait, issue)
        self-throttles when the system slows down, hiding collapse.
        Origins are pre-drawn (one per query, in issue order) so the
        schedule is deterministic under a fixed seed.  Returns results in
        issue order.
        """
        if interval_ms < 0:
            raise ValueError("arrival interval cannot be negative")
        if not queries:
            return []
        origins = [self.pick_origin() for _ in queries]
        results: list[TimedQueryResult | None] = [None] * len(queries)
        remaining = [len(queries)]
        all_done: SimFuture[None] = SimFuture()

        def launch(index: int) -> None:
            future = self.query(
                queries[index], relation, attribute, origin=origins[index]
            )

            def on_done(settled: SimFuture, index: int = index) -> None:
                results[index] = settled.result()
                remaining[0] -= 1
                if remaining[0] == 0:
                    all_done.resolve(None)

            future.add_done_callback(on_done)

        base = self.sim.now
        for index in range(len(queries)):
            self.sim.call_at(
                base + index * interval_ms, lambda index=index: launch(index)
            )
        self.sim.run_until_complete(all_done)
        return [result for result in results if result is not None]

    # -- internals -----------------------------------------------------

    def _run_chain(
        self,
        origin: int,
        identifier: int,
        hashed_query: IntRange,
        relation: str,
        attribute: str,
        started: float,
        parent: "Span | None" = None,
    ) -> SimFuture[ChainOutcome]:
        """One identifier: hop along the overlay path, then ask the owner —
        failing over down the successor list when the owner times out.

        Routing hops are charged per edge but modelled as reliable — the
        iterative Chord lookup retries hops internally; the request/reply
        legs to the replicas are where loss and crashes bite.  The first
        attempt (the owner) runs under the engine's base retry policy;
        each failover attempt gets its own :attr:`failover_policy` budget
        and is charged one successor-pointer hop.  With hedging enabled, a
        chain still unanswered at the hedge delay additionally launches
        the next untried replica *concurrently* — first answer wins, and
        settling the chain (resolve or cancel) cancels every outstanding
        request and timer.  The chain future always *resolves* (exhausting
        every replica yields ``timed_out=True``), so dead peers degrade
        the query instead of failing it.
        """
        sim = self.sim
        net = self.net
        system = self.system
        parent = parent if parent is not None else NULL_TRACE
        placed = system.place_identifier(identifier)
        via_edges: list[tuple[int, int, str]] = []
        path = system.router.route(
            placed,
            start_id=origin,
            recorder=lambda f, t, via: via_edges.append((f, t, via)),
        )
        owner = path[-1]
        hops = len(path) - 1
        edges = list(zip(path, path[1:]))
        span = parent.span("chain", identifier=identifier, placed=placed)
        chain: SimFuture[ChainOutcome] = SimFuture()
        outstanding: list[SimFuture] = []
        pending_timers: list[Timer] = []

        def on_chain_settled(settled: SimFuture) -> None:
            # Whether the chain resolved or was cancelled (quorum already
            # met), nothing launched on its behalf may keep running: the
            # losing hedge's request, queued failover hops, the hedge
            # timer — all released here.
            for timer in pending_timers:
                timer.cancel()
            for request in outstanding:
                request.cancel()
            if settled.cancelled:
                span.end(cancelled=True)

        chain.add_done_callback(on_chain_settled)

        def finish(
            reply: MatchReply | None,
            route_ms: float,
            timed_out: bool,
            failovers: int,
            hedged: bool = False,
        ) -> None:
            if chain.done:
                return
            span.end(
                owner=owner,
                hops=hops,
                timed_out=timed_out,
                failovers=failovers,
                answered_by=reply.peer_id if reply is not None else None,
            )
            chain.resolve(
                ChainOutcome(
                    identifier=identifier,
                    owner=owner,
                    hops=hops,
                    route_ms=route_ms,
                    reply=reply,
                    completed_ms=sim.now - started,
                    timed_out=timed_out,
                    failovers=failovers,
                    hedged=hedged,
                )
            )

        def ask_replicas() -> None:
            route_ms = sim.now - started
            match_started = sim.now
            candidates = system.failover_candidates(
                identifier, is_alive=net.is_alive
            )
            if owner not in candidates:
                candidates.insert(0, owner)
            #: next: rank of the next untried candidate; active: requests
            #: currently in flight for this chain.
            state = {"next": 1, "active": 0}

            def exhausted() -> None:
                net.stats.failover_exhausted += 1
                system.counters.failed_lookups += 1
                logger.warning(
                    "identifier %d unreachable at t=%.1f: all %d "
                    "candidates exhausted their budget",
                    identifier, sim.now, len(candidates),
                )
                span.event("unreachable", candidates=len(candidates))
                finish(
                    None, route_ms, timed_out=True,
                    failovers=len(candidates) - 1,
                )

            def launch(rank: int, hedged: bool) -> None:
                if chain.done or rank >= len(candidates):
                    return
                candidate = candidates[rank]
                state["active"] += 1
                if hedged:
                    net.stats.hedges += 1
                    span.event("hedge-launch", peer=candidate, rank=rank)
                span.event("attempt", peer=candidate, rank=rank)
                request = net.request(
                    origin,
                    candidate,
                    "match-request",
                    payload=(identifier, hashed_query, relation, attribute),
                    policy=self.policy if rank == 0 else self.failover_policy,
                    observer=lambda name, attrs: span.event(
                        name if name == "breaker-open" else f"net-{name}",
                        **{"peer": candidate, **attrs},
                    ),
                )
                outstanding.append(request)

                def on_done(settled: SimFuture) -> None:
                    state["active"] -= 1
                    if chain.done:
                        return
                    if settled.failed:
                        nxt = state["next"]
                        if nxt < len(candidates):
                            state["next"] = nxt + 1
                            span.event(
                                "failover",
                                source=candidate,
                                target=candidates[nxt],
                            )
                            # One successor-pointer hop to the next replica.
                            delay = net.latency.sample_ms(
                                candidate, candidates[nxt]
                            )
                            net.stats.record_routing_hops(1, latency_ms=delay)
                            pending_timers.append(
                                sim.call_later(
                                    delay, lambda: launch(nxt, hedged=False)
                                )
                            )
                        elif state["active"] == 0:
                            exhausted()
                        return
                    if hedged:
                        net.stats.hedge_wins += 1
                        span.event("hedge-win", peer=candidate, rank=rank)
                    elif rank > 0:
                        net.stats.failovers += 1
                        system.counters.failovers += 1
                        logger.info(
                            "degraded answer for identifier %d at t=%.1f: "
                            "replica %d answered after %d failover step(s)",
                            identifier, sim.now, candidate, rank,
                        )
                    answer = settled.result()
                    if answer is None:
                        reply = MatchReply(candidate, identifier, None, 0.0)
                    else:
                        descriptor, score = answer
                        reply = MatchReply(candidate, identifier, descriptor, score)
                    span.event(
                        "match-reply",
                        peer=candidate,
                        score=reply.score,
                        descriptor=(
                            str(reply.descriptor)
                            if reply.descriptor is not None
                            else None
                        ),
                    )
                    if self.hedge is not None:
                        self.hedge.observe(sim.now - match_started)
                    finish(
                        reply, route_ms, timed_out=False,
                        failovers=0 if hedged else rank, hedged=hedged,
                    )

                request.add_done_callback(on_done)

            launch(0, hedged=False)
            if self.hedge is not None and len(candidates) > 1:
                hedge_delay = self.hedge.delay_ms()
                if hedge_delay is not None:

                    def fire_hedge() -> None:
                        if chain.done or state["next"] >= len(candidates):
                            return
                        nxt = state["next"]
                        state["next"] = nxt + 1
                        launch(nxt, hedged=True)

                    pending_timers.append(sim.call_later(hedge_delay, fire_hedge))

        def advance(edge_index: int) -> None:
            if edge_index == len(edges):
                ask_replicas()
                return
            hop_from, hop_to = edges[edge_index]
            via = via_edges[edge_index][2] if edge_index < len(via_edges) else "?"
            delay = net.latency.sample_ms(hop_from, hop_to)
            net.stats.record_routing_hops(1, latency_ms=delay)

            def arrive() -> None:
                # Emitted on arrival, so the event's timestamp is the
                # virtual instant the hop completed.
                span.event(
                    "route-hop", source=hop_from, target=hop_to, via=via,
                    delay_ms=delay,
                )
                advance(edge_index + 1)

            sim.call_later(delay, arrive)

        advance(0)
        return chain

    def _after_locate(
        self,
        chains: list[ChainOutcome],
        query: IntRange,
        hashed_query: IntRange,
        relation: str,
        attribute: str,
        origin: int,
        started: float,
        out: SimFuture[TimedQueryResult],
        trace: "QueryTrace | None" = None,
        locate_span: "Span | None" = None,
        partial: bool = False,
    ) -> None:
        sim = self.sim
        config = self.system.config
        trace = trace if trace is not None else NULL_TRACE
        locate_span = locate_span if locate_span is not None else NULL_TRACE
        locate_done = sim.now
        locate_ms = locate_done - started
        route_ms = max((c.route_ms for c in chains), default=0.0)
        timeouts = sum(1 for c in chains if c.timed_out)
        failovers = sum(
            1 for c in chains if not c.timed_out and c.failovers > 0
        )
        best = max(
            (
                c.reply
                for c in chains
                if c.reply is not None and c.reply.descriptor is not None
            ),
            key=lambda reply: reply.score,
            default=None,
        )
        matched = best.descriptor if best is not None else None
        matcher_score = best.score if best is not None else 0.0
        exact = matched is not None and matched.range == hashed_query
        locate_span.end(
            hops=sum(c.hops for c in chains),
            timeouts=timeouts,
            failovers=failovers,
            best_score=matcher_score if best is not None else None,
            best_peer=best.peer_id if best is not None else None,
        )

        def finish(
            fetched: Partition | None,
            fetch_ms: float,
            stored: bool,
            store_failures: int,
            store_ms: float,
        ) -> None:
            similarity = matched.jaccard_to(query) if matched is not None else 0.0
            recall = matched.containment_of(query) if matched is not None else 0.0
            trace.end(
                matched=str(matched) if matched is not None else None,
                similarity=similarity,
                recall=recall,
                exact=exact,
                stored=stored,
                hops=sum(c.hops for c in chains),
                timeouts=timeouts,
                failovers=failovers,
                degraded="partial" if partial else (timeouts > 0),
                total_ms=sim.now - started,
            )
            out.resolve(
                TimedQueryResult(
                    query=query,
                    hashed_query=hashed_query,
                    matched=matched,
                    similarity=similarity,
                    recall=recall,
                    matcher_score=matcher_score,
                    exact=exact,
                    stored=stored,
                    chains=tuple(chains),
                    timeouts=timeouts,
                    failovers=failovers,
                    store_failures=store_failures,
                    route_ms=route_ms,
                    match_ms=locate_ms - route_ms,
                    locate_ms=locate_ms,
                    fetch_ms=fetch_ms,
                    store_ms=store_ms,
                    total_ms=sim.now - started,
                    partial=partial,
                    fetched=fetched,
                )
            )

        def store_phase(fetched: Partition | None, fetch_ms: float) -> None:
            if exact or not config.store_on_miss:
                finish(fetched, fetch_ms, stored=False, store_failures=0, store_ms=0.0)
                return
            store_started = sim.now
            descriptor = PartitionDescriptor(relation, attribute, hashed_query)
            store_span = trace.span("store", descriptor=str(descriptor))
            placements = []
            for c in chains:
                for rank, target in enumerate(
                    self.system.replica_owners(c.identifier)
                ):
                    primary = rank == 0
                    if not primary:
                        self.net.stats.replica_stores += 1
                    store_span.event(
                        "placement",
                        identifier=c.identifier,
                        target=target,
                        primary=primary,
                    )
                    placements.append(
                        self.net.request(
                            origin,
                            target,
                            "store-request",
                            payload=(c.identifier, descriptor, None, primary),
                            policy=self.policy,
                        )
                    )

            def on_stored(settled: SimFuture) -> None:
                outcomes = settled.result()
                failures = sum(1 for o in outcomes if isinstance(o, Exception))
                store_span.end(
                    placements=len(outcomes) - failures, failures=failures
                )
                finish(
                    fetched,
                    fetch_ms,
                    stored=True,
                    store_failures=failures,
                    store_ms=sim.now - store_started,
                )

            gather(placements).add_done_callback(on_stored)

        if self.fetch_rows and best is not None:
            fetch_started = sim.now
            fetch_span = trace.span(
                "fetch", peer=best.peer_id, descriptor=str(best.descriptor)
            )
            fetch = self.net.request(
                origin,
                best.peer_id,
                "fetch-partition",
                payload=(best.identifier, best.descriptor),
                policy=self.policy,
            )

            def on_fetched(settled: SimFuture) -> None:
                fetched = None if settled.failed else settled.result()
                fetch_span.end(ok=not settled.failed)
                store_phase(fetched, sim.now - fetch_started)

            fetch.add_done_callback(on_fetched)
        else:
            store_phase(None, 0.0)
