"""Event-driven message transport.

Where :class:`~repro.net.transport.SimulatedNetwork` delivers synchronously
and instantly (right for hop-count experiments), :class:`AsyncNetwork`
delivers on a :class:`~repro.sim.kernel.Simulator` clock: every message
takes latency sampled from a :class:`~repro.net.latency.LatencyModel`,
may be dropped in flight, and is silently swallowed by a crashed recipient.
Requests therefore need timeouts — :meth:`request` arms a retry schedule
(:class:`RetryPolicy`) and rejects with
:class:`~repro.errors.RequestTimeoutError` once it is exhausted.

Two overload mechanisms extend the base model, both off by default:

- **bounded service queues** (``queue_capacity`` + ``service_time_ms``):
  each peer serves requests one at a time; arrivals queue behind the
  in-service request (so load shows up as queueing delay) and arrivals
  that find the queue full are *shed* — the peer sends a small busy reply
  and the requester's future rejects with
  :class:`~repro.errors.PeerBusyError`, counted as ``busy_shed`` apart
  from silent timeouts;
- **adaptive request policies** (:mod:`repro.sim.policies`): attach an
  :class:`~repro.sim.policies.AdaptiveTimeout`,
  :class:`~repro.sim.policies.JitteredBackoff` and/or
  :class:`~repro.sim.policies.CircuitBreaker` to the network and every
  :meth:`request` consults them — per-destination patience, paced
  retries, and fail-fast refusal (:class:`~repro.errors.OpenCircuitError`)
  toward destinations that keep failing.

Grey failures registered with the :class:`~repro.sim.faults.FaultInjector`
inflate link latency (worse endpoint wins) and service time.  Traffic
accounting reuses :class:`~repro.net.transport.TrafficStats`; messages are
charged at send time (the wire carries a lost packet just the same) and
drops/retries/timeouts/sheds are counted separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import (
    OpenCircuitError,
    PeerBusyError,
    RequestTimeoutError,
    UnknownPeerError,
)
from repro.net.latency import LatencyModel, SeededLatency
from repro.net.message import Message
from repro.net.transport import TrafficStats
from repro.obs.registry import MetricsRegistry
from repro.sim.faults import FaultInjector
from repro.sim.futures import SimFuture
from repro.sim.kernel import Simulator, Timer
from repro.sim.policies import AdaptiveTimeout, CircuitBreaker, JitteredBackoff

__all__ = ["AsyncNetwork", "RetryPolicy"]

Handler = Callable[[Message], Any]

#: Size of the busy reply a shedding peer sends (it carries no payload).
BUSY_REPLY_BYTES = 16


@dataclass(frozen=True)
class RetryPolicy:
    """How long to wait for a reply, and how stubbornly to re-ask.

    Attempt ``i`` (0-based) waits ``timeout_ms * backoff**i`` before giving
    up on it; after ``max_retries`` re-sends the request as a whole fails.
    The defaults suit a wide-area RTT of ~100-200 ms.
    """

    timeout_ms: float = 400.0
    max_retries: int = 2
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout_ms <= 0:
            raise ValueError("timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.backoff < 1.0:
            raise ValueError("backoff factor must be >= 1")

    @property
    def total_attempts(self) -> int:
        """Sends performed before the request fails."""
        return self.max_retries + 1

    def timeout_for(self, attempt: int) -> float:
        """Patience for the given 0-based attempt."""
        return self.timeout_ms * self.backoff**attempt

    def worst_case_ms(self) -> float:
        """Total virtual time a request can occupy before rejecting."""
        return sum(self.timeout_for(i) for i in range(self.total_attempts))


class _ServiceQueue:
    """One peer's bounded single-server queue state."""

    __slots__ = ("backlog", "free_at")

    def __init__(self) -> None:
        self.backlog = 0  # requests queued or in service
        self.free_at = 0.0  # virtual time the server next idles


class AsyncNetwork:
    """Peers exchanging delayed, droppable messages on a virtual clock."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        drop_probability: float = 0.0,
        seed: int = 0,
        registry: "MetricsRegistry | None" = None,
        queue_capacity: int = 0,
        service_time_ms: float = 0.0,
    ) -> None:
        if queue_capacity < 0:
            raise ValueError("queue capacity cannot be negative")
        if service_time_ms < 0:
            raise ValueError("service time cannot be negative")
        if queue_capacity > 0 and service_time_ms <= 0:
            # With zero service time same-instant arrivals would race the
            # zero-delay completion events and shed nondeterministically.
            raise ValueError("a bounded queue needs a positive service time")
        self.sim = sim
        self.latency = latency if latency is not None else SeededLatency(seed=seed)
        self.faults = FaultInjector(drop_probability, seed=seed)
        # Namespaced apart from the synchronous transport's "net.*" so a
        # system running both keeps the two accountings distinct in one
        # shared registry.
        self.stats = TrafficStats(registry=registry, namespace="sim.net")
        #: 0 disables the queue model entirely: handlers run the instant a
        #: request arrives, exactly the pre-overload-layer behaviour.
        self.queue_capacity = queue_capacity
        self.service_time_ms = service_time_ms
        #: Optional adaptive policies consulted by :meth:`request`; all
        #: None by default (static policy, immediate retries, no breaker).
        self.adaptive: AdaptiveTimeout | None = None
        self.backoff: JitteredBackoff | None = None
        self.breaker: CircuitBreaker | None = None
        self._handlers: dict[int, Handler] = {}
        self._queues: dict[int, _ServiceQueue] = {}

    # -- membership (mirrors SimulatedNetwork) -------------------------

    def register(self, peer_id: int, handler: Handler) -> None:
        """Attach ``handler`` for messages addressed to ``peer_id``."""
        self._handlers[peer_id] = handler

    def unregister(self, peer_id: int) -> None:
        """Detach a peer (it stops receiving messages)."""
        self._handlers.pop(peer_id, None)
        self._queues.pop(peer_id, None)

    def is_registered(self, peer_id: int) -> bool:
        return peer_id in self._handlers

    @property
    def peer_count(self) -> int:
        return len(self._handlers)

    # -- faults --------------------------------------------------------

    def crash(self, peer_id: int) -> None:
        """Fail-stop ``peer_id``: it stays registered but answers nothing."""
        self.faults.crash(peer_id)

    def recover(self, peer_id: int) -> None:
        """Un-crash ``peer_id``."""
        self.faults.recover(peer_id)

    def is_alive(self, peer_id: int) -> bool:
        """Registered and not currently crashed."""
        return self.is_registered(peer_id) and not self.faults.is_crashed(peer_id)

    # -- load introspection --------------------------------------------

    def queue_backlog(self, peer_id: int) -> int:
        """Requests currently queued or in service at ``peer_id``."""
        queue = self._queues.get(peer_id)
        return queue.backlog if queue is not None else 0

    # -- delivery ------------------------------------------------------

    def send(
        self,
        sender: int,
        recipient: int,
        kind: str,
        payload: Any = None,
        size_bytes: int = 64,
        reply_size_bytes: int = 64,
    ) -> SimFuture[Any]:
        """One request/reply exchange, no retries.

        Resolves with the recipient handler's return value after a full
        round trip of sampled latency (queueing delay included when the
        service-queue model is on); rejects with
        :class:`~repro.errors.PeerBusyError` if the recipient shed the
        request.  A message lost to a drop or a crashed recipient leaves
        the future pending forever — arming a timeout is the caller's job
        (see :meth:`request`).
        """
        if recipient not in self._handlers:
            future: SimFuture[Any] = SimFuture()
            future.reject(UnknownPeerError(recipient))
            return future
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
        )
        future = SimFuture()
        out_delay = self.latency.sample_ms(sender, recipient) * self.faults.link_factor(
            sender, recipient
        )
        self.stats.record(message, out_delay)
        dropped_out = self.faults.drops_delivery()

        def send_reply(
            reply_kind: str,
            reply_payload: Any,
            size: int,
            settle: Callable[[], None],
        ) -> None:
            reply = Message(
                sender=recipient,
                recipient=sender,
                kind=reply_kind,
                payload=reply_payload,
                size_bytes=size,
            )
            back_delay = self.latency.sample_ms(
                recipient, sender
            ) * self.faults.link_factor(recipient, sender)
            self.stats.record(reply, back_delay)
            dropped_back = self.faults.drops_delivery()

            def deliver_reply() -> None:
                if dropped_back:
                    self.stats.drops += 1
                    return
                if self.faults.is_crashed(sender):
                    # The requester crashed while the exchange was in
                    # flight; running its continuation would hand a reply
                    # to a dead peer.
                    self.stats.replies_to_dead += 1
                    return
                settle()

            self.sim.call_later(back_delay, deliver_reply)

        def serve() -> None:
            if self.faults.is_crashed(recipient):
                # Crashed after the request arrived (possibly mid-queue).
                self.stats.drops += 1
                return
            handler = self._handlers.get(recipient)
            if handler is None:
                self.stats.drops += 1
                return
            reply_payload = handler(message)
            send_reply(
                f"{kind}-reply",
                reply_payload,
                reply_size_bytes,
                lambda: future.resolve(reply_payload),
            )

        def deliver() -> None:
            if dropped_out or self.faults.is_crashed(recipient):
                self.stats.drops += 1
                return
            if recipient not in self._handlers:  # unregistered while in flight
                self.stats.drops += 1
                return
            if self.queue_capacity == 0:
                serve()
                return
            queue = self._queues.get(recipient)
            if queue is None:
                queue = _ServiceQueue()
                self._queues[recipient] = queue
            if queue.backlog >= self.queue_capacity:
                self.stats.busy_shed += 1
                send_reply(
                    f"{kind}-busy",
                    None,
                    BUSY_REPLY_BYTES,
                    lambda: future.reject(PeerBusyError(recipient)),
                )
                return
            queue.backlog += 1
            start = max(queue.free_at, self.sim.now)
            done = start + self.service_time_ms * self.faults.service_factor(recipient)
            queue.free_at = done

            def serve_queued() -> None:
                queue.backlog -= 1
                serve()

            self.sim.call_later(done - self.sim.now, serve_queued)

        self.sim.call_later(out_delay, deliver)
        return future

    def request(
        self,
        sender: int,
        recipient: int,
        kind: str,
        payload: Any = None,
        size_bytes: int = 64,
        reply_size_bytes: int = 64,
        policy: RetryPolicy | None = None,
        observer: Callable[[str, dict], None] | None = None,
    ) -> SimFuture[Any]:
        """A reliable-ish exchange: :meth:`send` under a retry schedule.

        Resolves with the first reply to arrive (late replies from earlier
        attempts count); rejects with
        :class:`~repro.errors.RequestTimeoutError` when every attempt's
        patience runs out, with :class:`~repro.errors.PeerBusyError` when
        the final attempt was shed, or immediately with
        :class:`~repro.errors.OpenCircuitError` when the destination's
        circuit breaker refuses the send (no retry budget consumed).

        When the network carries adaptive policies, each attempt's
        patience comes from the destination's RTT estimate once warm
        (scaled by the policy's backoff for later attempts), retries are
        paced by the jittered backoff, and every outcome feeds the
        breaker.  Cancelling the returned future releases its pending
        timer — hedged lookups rely on that to not leak virtual-time work.

        ``observer(name, attrs)`` — when given — is called at each
        lifecycle step, at the virtual time it happens: ``send`` per
        attempt launched, ``retry`` when a timed-out attempt re-sends,
        ``busy`` when an attempt came back shed, ``breaker-open`` on a
        fail-fast refusal, ``reply`` when the winning reply lands,
        ``timeout`` when the request as a whole gives up.  The tracing
        layer maps these onto span events.
        """
        policy = policy if policy is not None else RetryPolicy()
        out: SimFuture[Any] = SimFuture()
        started = self.sim.now
        attempt_no = 0
        pending_timer: list[Timer | None] = [None]

        def notify(name: str, **attrs) -> None:
            if observer is not None:
                observer(name, attrs)

        def timeout_for(attempt: int) -> float:
            if self.adaptive is not None:
                warm = self.adaptive.timeout_ms(recipient)
                if warm is not None:
                    return warm * policy.backoff**attempt
            return policy.timeout_for(attempt)

        def launch_attempt() -> None:
            if self.breaker is not None and not self.breaker.allow(recipient):
                notify("breaker-open", to=recipient)
                out.reject(OpenCircuitError(recipient))
                return
            attempt_started = self.sim.now
            notify("send", attempt=attempt_no, to=recipient, kind=kind)
            inner = self.send(
                sender,
                recipient,
                kind,
                payload=payload,
                size_bytes=size_bytes,
                reply_size_bytes=reply_size_bytes,
            )
            timer = self.sim.call_later(timeout_for(attempt_no), on_timeout)
            pending_timer[0] = timer

            def on_reply(settled: SimFuture[Any]) -> None:
                timer.cancel()
                if out.done:
                    return  # duplicate reply after a retry already won
                if settled.failed:
                    error = settled.exception()
                    if isinstance(error, PeerBusyError):
                        if self.breaker is not None:
                            self.breaker.record_failure(recipient)
                        notify("busy", peer=recipient, attempt=attempt_no)
                        fail_attempt(error)
                        return
                    out.reject(error)  # type: ignore[arg-type]
                    return
                if self.adaptive is not None:
                    # Each attempt has its own future, so this RTT is
                    # unambiguously attributable (Karn's concern is moot).
                    self.adaptive.observe(recipient, self.sim.now - attempt_started)
                if self.breaker is not None:
                    self.breaker.record_success(recipient)
                notify("reply", ms=self.sim.now - started)
                out.resolve(settled.result())

            inner.add_done_callback(on_reply)

        def fail_attempt(error: BaseException | None) -> None:
            nonlocal attempt_no
            attempt_no += 1
            if attempt_no >= policy.total_attempts:
                waited = self.sim.now - started
                if isinstance(error, PeerBusyError):
                    notify("busy-exhausted", attempts=attempt_no, waited_ms=waited)
                    out.reject(error)
                    return
                self.stats.timeouts += 1
                notify("timeout", attempts=attempt_no, waited_ms=waited)
                out.reject(RequestTimeoutError(recipient, attempt_no, waited))
                return
            self.stats.retries += 1
            notify("retry", attempt=attempt_no)
            if self.backoff is not None:
                delay = self.backoff.delay_ms(attempt_no - 1)
                pending_timer[0] = self.sim.call_later(delay, launch_attempt)
            else:
                launch_attempt()

        def on_timeout() -> None:
            if out.done:
                return
            if self.breaker is not None:
                self.breaker.record_failure(recipient)
            fail_attempt(None)

        def release_timer(_: SimFuture[Any]) -> None:
            timer = pending_timer[0]
            if timer is not None:
                timer.cancel()

        # Runs on every settle (reply, rejection, *cancellation*): the
        # pending timeout/backoff timer must not outlive the request.
        out.add_done_callback(release_timer)
        launch_attempt()
        return out

    def charge_route(self, path: tuple[int, ...], size_bytes: int = 32) -> float:
        """Account for a hop-by-hop route; returns its total latency in ms
        (same contract as :meth:`SimulatedNetwork.charge_route`)."""
        total = 0.0
        for hop_from, hop_to in zip(path, path[1:]):
            total += self.latency.sample_ms(hop_from, hop_to)
        self.stats.record_routing_hops(
            max(0, len(path) - 1), size_bytes=size_bytes, latency_ms=total
        )
        return total
