"""Event-driven message transport.

Where :class:`~repro.net.transport.SimulatedNetwork` delivers synchronously
and instantly (right for hop-count experiments), :class:`AsyncNetwork`
delivers on a :class:`~repro.sim.kernel.Simulator` clock: every message
takes latency sampled from a :class:`~repro.net.latency.LatencyModel`,
may be dropped in flight, and is silently swallowed by a crashed recipient.
Requests therefore need timeouts — :meth:`request` arms a retry schedule
(:class:`RetryPolicy`) and rejects with
:class:`~repro.errors.RequestTimeoutError` once it is exhausted.

Traffic accounting reuses :class:`~repro.net.transport.TrafficStats`;
messages are charged at send time (the wire carries a lost packet just the
same) and drops/retries/timeouts are counted separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import RequestTimeoutError, UnknownPeerError
from repro.net.latency import LatencyModel, SeededLatency
from repro.net.message import Message
from repro.net.transport import TrafficStats
from repro.obs.registry import MetricsRegistry
from repro.sim.faults import FaultInjector
from repro.sim.futures import SimFuture
from repro.sim.kernel import Simulator

__all__ = ["AsyncNetwork", "RetryPolicy"]

Handler = Callable[[Message], Any]


@dataclass(frozen=True)
class RetryPolicy:
    """How long to wait for a reply, and how stubbornly to re-ask.

    Attempt ``i`` (0-based) waits ``timeout_ms * backoff**i`` before giving
    up on it; after ``max_retries`` re-sends the request as a whole fails.
    The defaults suit a wide-area RTT of ~100-200 ms.
    """

    timeout_ms: float = 400.0
    max_retries: int = 2
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout_ms <= 0:
            raise ValueError("timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.backoff < 1.0:
            raise ValueError("backoff factor must be >= 1")

    @property
    def total_attempts(self) -> int:
        """Sends performed before the request fails."""
        return self.max_retries + 1

    def timeout_for(self, attempt: int) -> float:
        """Patience for the given 0-based attempt."""
        return self.timeout_ms * self.backoff**attempt

    def worst_case_ms(self) -> float:
        """Total virtual time a request can occupy before rejecting."""
        return sum(self.timeout_for(i) for i in range(self.total_attempts))


class AsyncNetwork:
    """Peers exchanging delayed, droppable messages on a virtual clock."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        drop_probability: float = 0.0,
        seed: int = 0,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else SeededLatency(seed=seed)
        self.faults = FaultInjector(drop_probability, seed=seed)
        # Namespaced apart from the synchronous transport's "net.*" so a
        # system running both keeps the two accountings distinct in one
        # shared registry.
        self.stats = TrafficStats(registry=registry, namespace="sim.net")
        self._handlers: dict[int, Handler] = {}

    # -- membership (mirrors SimulatedNetwork) -------------------------

    def register(self, peer_id: int, handler: Handler) -> None:
        """Attach ``handler`` for messages addressed to ``peer_id``."""
        self._handlers[peer_id] = handler

    def unregister(self, peer_id: int) -> None:
        """Detach a peer (it stops receiving messages)."""
        self._handlers.pop(peer_id, None)

    def is_registered(self, peer_id: int) -> bool:
        return peer_id in self._handlers

    @property
    def peer_count(self) -> int:
        return len(self._handlers)

    # -- faults --------------------------------------------------------

    def crash(self, peer_id: int) -> None:
        """Fail-stop ``peer_id``: it stays registered but answers nothing."""
        self.faults.crash(peer_id)

    def recover(self, peer_id: int) -> None:
        """Un-crash ``peer_id``."""
        self.faults.recover(peer_id)

    def is_alive(self, peer_id: int) -> bool:
        """Registered and not currently crashed."""
        return self.is_registered(peer_id) and not self.faults.is_crashed(peer_id)

    # -- delivery ------------------------------------------------------

    def send(
        self,
        sender: int,
        recipient: int,
        kind: str,
        payload: Any = None,
        size_bytes: int = 64,
        reply_size_bytes: int = 64,
    ) -> SimFuture[Any]:
        """One request/reply exchange, no retries.

        Resolves with the recipient handler's return value after a full
        round trip of sampled latency.  A message lost to a drop or a
        crashed recipient leaves the future pending forever — arming a
        timeout is the caller's job (see :meth:`request`).
        """
        if recipient not in self._handlers:
            future: SimFuture[Any] = SimFuture()
            future.reject(UnknownPeerError(recipient))
            return future
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
        )
        future = SimFuture()
        out_delay = self.latency.sample_ms(sender, recipient)
        self.stats.record(message, out_delay)
        dropped_out = self.faults.drops_delivery()

        def deliver() -> None:
            if dropped_out or self.faults.is_crashed(recipient):
                self.stats.drops += 1
                return
            handler = self._handlers.get(recipient)
            if handler is None:  # unregistered while in flight
                self.stats.drops += 1
                return
            reply_payload = handler(message)
            reply = Message(
                sender=recipient,
                recipient=sender,
                kind=f"{kind}-reply",
                payload=reply_payload,
                size_bytes=reply_size_bytes,
            )
            back_delay = self.latency.sample_ms(recipient, sender)
            self.stats.record(reply, back_delay)
            dropped_back = self.faults.drops_delivery()

            def deliver_reply() -> None:
                if dropped_back:
                    self.stats.drops += 1
                    return
                future.resolve(reply_payload)

            self.sim.call_later(back_delay, deliver_reply)

        self.sim.call_later(out_delay, deliver)
        return future

    def request(
        self,
        sender: int,
        recipient: int,
        kind: str,
        payload: Any = None,
        size_bytes: int = 64,
        reply_size_bytes: int = 64,
        policy: RetryPolicy | None = None,
        observer: Callable[[str, dict], None] | None = None,
    ) -> SimFuture[Any]:
        """A reliable-ish exchange: :meth:`send` under a retry schedule.

        Resolves with the first reply to arrive (late replies from earlier
        attempts count); rejects with
        :class:`~repro.errors.RequestTimeoutError` when every attempt's
        patience runs out.

        ``observer(name, attrs)`` — when given — is called at each
        lifecycle step, at the virtual time it happens: ``send`` per
        attempt launched, ``retry`` when a timed-out attempt re-sends,
        ``reply`` when the winning reply lands, ``timeout`` when the
        request as a whole gives up.  The tracing layer maps these onto
        span events.
        """
        policy = policy if policy is not None else RetryPolicy()
        out: SimFuture[Any] = SimFuture()
        started = self.sim.now
        attempt_no = 0

        def notify(name: str, **attrs) -> None:
            if observer is not None:
                observer(name, attrs)

        def launch_attempt() -> None:
            notify("send", attempt=attempt_no, to=recipient, kind=kind)
            inner = self.send(
                sender,
                recipient,
                kind,
                payload=payload,
                size_bytes=size_bytes,
                reply_size_bytes=reply_size_bytes,
            )
            timer = self.sim.call_later(policy.timeout_for(attempt_no), on_timeout)

            def on_reply(settled: SimFuture[Any]) -> None:
                timer.cancel()
                if out.done:
                    return  # duplicate reply after a retry already won
                if settled.failed:
                    out.reject(settled.exception())  # type: ignore[arg-type]
                else:
                    notify("reply", ms=self.sim.now - started)
                    out.resolve(settled.result())

            inner.add_done_callback(on_reply)

        def on_timeout() -> None:
            nonlocal attempt_no
            if out.done:
                return
            attempt_no += 1
            if attempt_no >= policy.total_attempts:
                self.stats.timeouts += 1
                notify(
                    "timeout",
                    attempts=attempt_no,
                    waited_ms=self.sim.now - started,
                )
                out.reject(
                    RequestTimeoutError(
                        recipient, attempt_no, self.sim.now - started
                    )
                )
            else:
                self.stats.retries += 1
                notify("retry", attempt=attempt_no)
                launch_attempt()

        launch_attempt()
        return out

    def charge_route(self, path: tuple[int, ...], size_bytes: int = 32) -> float:
        """Account for a hop-by-hop route; returns its total latency in ms
        (same contract as :meth:`SimulatedNetwork.charge_route`)."""
        total = 0.0
        for hop_from, hop_to in zip(path, path[1:]):
            total += self.latency.sample_ms(hop_from, hop_to)
        self.stats.record_routing_hops(
            max(0, len(path) - 1), size_bytes=size_bytes, latency_ms=total
        )
        return total
