"""Anti-entropy replica repair on the event-driven kernel.

Store-time replication keeps ``r`` copies of every bucket entry only until
churn eats them: each crash silently drops the copies its peer held, and
each failover answer papers over the loss without fixing it.  The
:class:`ReplicaRepairer` is the self-healing half of the robustness story —
a periodic simulation task that diffs the system's *actual* placement
against the first ``r`` alive successors of every identifier
(:meth:`RangeSelectionSystem.replication_deficits`) and re-replicates the
missing copies peer-to-peer, under the same timeout/retry discipline as any
other request.

An identifier whose every copy sits on crashed peers is *unrepairable*: no
alive holder can source the copy, so the round counts it as lost and moves
on.  With ``r = 1`` this is the common case after a crash — exactly the
degradation the replicated configurations are measured against.
"""

from __future__ import annotations

from repro.obs.log import get_logger
from repro.obs.registry import (
    MetricsRegistry,
    RegistryBackedCounters,
    registry_field,
)
from repro.sim.futures import SimFuture, gather
from repro.sim.network import RetryPolicy
from repro.sim.query import AsyncQueryEngine

__all__ = ["ReplicaRepairer", "RepairStats"]

logger = get_logger("sim.repair")


class RepairStats(RegistryBackedCounters):
    """Running totals across repair rounds.

    Served from a :class:`~repro.obs.MetricsRegistry` as ``repair.*``
    counters; the repairer binds its engine's system registry so repair
    activity appears in the unified metric exports.
    """

    SCALAR_FIELDS = ("rounds", "copies_created", "copy_failures", "unrepairable")

    rounds = registry_field("rounds")
    #: Copies successfully re-replicated onto alive successors.
    copies_created = registry_field("copies_created")
    #: Copy attempts whose target never answered (crashed mid-round).
    copy_failures = registry_field("copy_failures")
    #: Deficits seen whose identifier had no alive holder left, summed
    #: over rounds (the same lost identifier counts every round it is
    #: observed — this measures exposure, not unique losses).
    unrepairable = registry_field("unrepairable")

    def __init__(
        self,
        rounds: int = 0,
        copies_created: int = 0,
        copy_failures: int = 0,
        unrepairable: int = 0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._bind(registry, "repair")
        self.rounds = rounds
        self.copies_created = copies_created
        self.copy_failures = copy_failures
        self.unrepairable = unrepairable

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"{self.rounds} rounds, {self.copies_created} copies created, "
            f"{self.copy_failures} copy failures, "
            f"{self.unrepairable} unrepairable deficits"
        )


class ReplicaRepairer:
    """Periodic repair task bound to an :class:`AsyncQueryEngine`.

    ``start()`` schedules a round every ``interval_ms`` of virtual time;
    rounds keep rescheduling themselves until ``stop()``.  The simulator
    only advances while something drives it, so an idle repairer does not
    keep a simulation alive by itself — but a driven simulation (queries,
    ``sim.run()``) will execute due rounds automatically.  ``run_round()``
    can also be called directly for deterministic repair-after-churn
    experiments.
    """

    def __init__(
        self,
        engine: AsyncQueryEngine,
        interval_ms: float = 5_000.0,
        policy: RetryPolicy | None = None,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("repair interval must be positive")
        self.engine = engine
        self.interval_ms = interval_ms
        self.policy = policy if policy is not None else engine.policy
        self.stats = RepairStats(registry=engine.system.metrics)
        self._timer = None
        self._running = False

    # -- scheduling ----------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether periodic rounds are currently scheduled."""
        return self._running

    def start(self) -> None:
        """Begin periodic repair (idempotent)."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Cancel the pending round (idempotent)."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _schedule_next(self) -> None:
        self._timer = self.engine.sim.call_later(self.interval_ms, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        future = self.run_round()
        future.add_done_callback(
            lambda _settled: self._schedule_next() if self._running else None
        )

    # -- one round -----------------------------------------------------

    def run_round(self) -> SimFuture[int]:
        """One anti-entropy pass; resolves with the copies created.

        Scans placement synchronously (anti-entropy exchanges are modelled
        at the copy level, not the digest level), then issues every
        missing copy as a timed store-request from an alive holder to the
        alive successor that should hold it.
        """
        engine = self.engine
        system = engine.system
        net = engine.net
        self.stats.rounds += 1
        deficits = list(system.replication_deficits(net.is_alive))
        self.stats.unrepairable += self._count_unrepairable(net.is_alive)
        out: SimFuture[int] = SimFuture()
        if not deficits:
            # Resolve on the clock, not inline, so callers can always
            # attach callbacks before the round settles.
            engine.sim.call_later(0.0, lambda: out.resolve(0))
            return out
        copies = [
            net.request(
                source,
                target,
                "store-request",
                payload=(identifier, descriptor, partition, primary),
                size_bytes=partition.size_bytes if partition else 64,
                policy=self.policy,
            )
            for identifier, descriptor, source, partition, target, primary in deficits
        ]

        def on_done(settled: SimFuture) -> None:
            outcomes = settled.result()
            created = sum(1 for o in outcomes if not isinstance(o, Exception))
            failed = len(outcomes) - created
            self.stats.copies_created += created
            self.stats.copy_failures += failed
            system.counters.repairs += created
            logger.info(
                "repair round %d: %d copies created, %d failed",
                int(self.stats.rounds), created, failed,
            )
            out.resolve(created)

        gather(copies).add_done_callback(on_done)
        return out

    def _count_unrepairable(self, is_alive) -> int:
        """Identifiers some replica should hold but no alive peer does."""
        alive_held: set[tuple[int, object]] = set()
        all_held: set[tuple[int, object]] = set()
        for store in self.engine.system.stores.values():
            for identifier, entry in store.entries():
                key = (identifier, entry.descriptor)
                all_held.add(key)
                if is_alive(store.peer_id):
                    alive_held.add(key)
        return len(all_held - alive_held)
