"""Discrete-event simulation: virtual time, loss, crashes, timeouts.

The synchronous transport (:mod:`repro.net`) answers "how many messages";
this subpackage answers "how long, and what breaks".  It provides:

- :class:`~repro.sim.kernel.Simulator` — virtual clock + priority event
  queue + cancellable timers;
- :class:`~repro.sim.futures.SimFuture` — values that settle at a later
  virtual time, with :func:`~repro.sim.futures.gather` for fan-out;
- :class:`~repro.sim.network.AsyncNetwork` — delayed, droppable delivery
  over any :class:`~repro.net.latency.LatencyModel`, with per-peer crash
  injection and :class:`~repro.sim.network.RetryPolicy` timeouts;
- :class:`~repro.sim.query.AsyncQueryEngine` — the paper's query procedure
  with the ``l`` lookups genuinely concurrent, timed per phase, failing
  over down the successor list when replicas are configured (the shared
  :class:`~repro.rpc.engine.QueryEngine` on the event-driven transport);
- :class:`~repro.sim.repair.ReplicaRepairer` — the periodic anti-entropy
  task that restores the replication factor after crashes;
- :mod:`repro.sim.policies` — the overload-protection layer: per-peer
  adaptive timeouts (:class:`~repro.sim.policies.AdaptiveTimeout`),
  jittered retry backoff (:class:`~repro.sim.policies.JitteredBackoff`),
  per-destination circuit breakers
  (:class:`~repro.sim.policies.CircuitBreaker`) and the hedged-lookup
  trigger (:class:`~repro.sim.policies.HedgePolicy`).

Exports resolve lazily (PEP 562): the low-level kernel modules
(``futures``, ``kernel``) are imported by :mod:`repro.rpc.engine`, which
:mod:`repro.core.system` in turn loads — an eager import of
:mod:`repro.sim.query` here would close that loop.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "Simulator": "repro.sim.kernel",
    "Timer": "repro.sim.kernel",
    "SimFuture": "repro.sim.futures",
    "gather": "repro.sim.futures",
    "FaultInjector": "repro.sim.faults",
    "AsyncNetwork": "repro.sim.network",
    "RetryPolicy": "repro.sim.network",
    "AdaptiveTimeout": "repro.sim.policies",
    "JitteredBackoff": "repro.sim.policies",
    "CircuitBreaker": "repro.sim.policies",
    "HedgePolicy": "repro.sim.policies",
    "AsyncQueryEngine": "repro.sim.query",
    "ChainOutcome": "repro.sim.query",
    "TimedQueryResult": "repro.sim.query",
    "ReplicaRepairer": "repro.sim.repair",
    "RepairStats": "repro.sim.repair",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(__all__))
