"""Discrete-event simulation: virtual time, loss, crashes, timeouts.

The synchronous transport (:mod:`repro.net`) answers "how many messages";
this subpackage answers "how long, and what breaks".  It provides:

- :class:`~repro.sim.kernel.Simulator` — virtual clock + priority event
  queue + cancellable timers;
- :class:`~repro.sim.futures.SimFuture` — values that settle at a later
  virtual time, with :func:`~repro.sim.futures.gather` for fan-out;
- :class:`~repro.sim.network.AsyncNetwork` — delayed, droppable delivery
  over any :class:`~repro.net.latency.LatencyModel`, with per-peer crash
  injection and :class:`~repro.sim.network.RetryPolicy` timeouts;
- :class:`~repro.sim.query.AsyncQueryEngine` — the paper's query procedure
  with the ``l`` lookups genuinely concurrent, timed per phase, failing
  over down the successor list when replicas are configured;
- :class:`~repro.sim.repair.ReplicaRepairer` — the periodic anti-entropy
  task that restores the replication factor after crashes;
- :mod:`repro.sim.policies` — the overload-protection layer: per-peer
  adaptive timeouts (:class:`~repro.sim.policies.AdaptiveTimeout`),
  jittered retry backoff (:class:`~repro.sim.policies.JitteredBackoff`),
  per-destination circuit breakers
  (:class:`~repro.sim.policies.CircuitBreaker`) and the hedged-lookup
  trigger (:class:`~repro.sim.policies.HedgePolicy`).
"""

from repro.sim.faults import FaultInjector
from repro.sim.futures import SimFuture, gather
from repro.sim.kernel import Simulator, Timer
from repro.sim.network import AsyncNetwork, RetryPolicy
from repro.sim.policies import (
    AdaptiveTimeout,
    CircuitBreaker,
    HedgePolicy,
    JitteredBackoff,
)
from repro.sim.query import AsyncQueryEngine, ChainOutcome, TimedQueryResult
from repro.sim.repair import RepairStats, ReplicaRepairer

__all__ = [
    "Simulator",
    "Timer",
    "SimFuture",
    "gather",
    "FaultInjector",
    "AsyncNetwork",
    "RetryPolicy",
    "AdaptiveTimeout",
    "JitteredBackoff",
    "CircuitBreaker",
    "HedgePolicy",
    "AsyncQueryEngine",
    "ChainOutcome",
    "TimedQueryResult",
    "ReplicaRepairer",
    "RepairStats",
]
