"""Fault injection for the event-driven transport.

Three fault classes the paper's testbed could not explore:

- **message loss** — every directed delivery is independently dropped with
  a configurable probability (one deterministic stream per injector, so a
  seed replays the same losses);
- **peer crashes** — a crashed peer silently ignores everything addressed
  to it until it recovers, which is how a fail-stop node looks from the
  outside: no error, just no reply;
- **grey failures** — a *slow* peer stays alive and correct but serves
  degraded: its links carry a latency multiplier and its service rate is
  throttled by a divisor.  This is the failure mode that dominates real
  deployments (and the one fail-stop models can't express): the peer
  answers, just late enough to drag a query's tail with it.

Crashes and slowdowns can be toggled directly (:meth:`crash` /
:meth:`recover`, :meth:`slow` / :meth:`unslow`) or scheduled on a
:class:`~repro.sim.kernel.Simulator` clock to model churn mid-run.
"""

from __future__ import annotations

import numpy as np

from repro.sim.kernel import Simulator, Timer
from repro.util.rng import derive_rng

__all__ = ["FaultInjector"]


class FaultInjector:
    """Loss, crash and grey-failure state consulted by
    :class:`~repro.sim.network.AsyncNetwork`."""

    def __init__(self, drop_probability: float = 0.0, seed: int = 0) -> None:
        self.drop_probability = drop_probability
        self._rng: np.random.Generator = derive_rng(seed, "sim/faults")
        self._crashed: set[int] = set()
        #: peer_id -> (latency multiplier, service-time multiplier)
        self._slowed: dict[int, tuple[float, float]] = {}

    # -- loss probability (validated on every assignment) --------------

    @property
    def drop_probability(self) -> float:
        """Independent per-delivery loss probability, in ``[0, 1)``."""
        return self._drop_probability

    @drop_probability.setter
    def drop_probability(self, value: float) -> None:
        # Validating in the setter (not just __init__) matters because
        # experiments mutate this mid-run for phased fault schedules.
        if not 0.0 <= value < 1.0:
            raise ValueError("drop probability must be within [0, 1)")
        self._drop_probability = value

    # -- crashes -------------------------------------------------------

    def crash(self, peer_id: int) -> None:
        """Fail-stop a peer: it stops handling and acknowledging messages."""
        self._crashed.add(peer_id)

    def recover(self, peer_id: int) -> None:
        """Bring a crashed peer back (idempotent)."""
        self._crashed.discard(peer_id)

    def is_crashed(self, peer_id: int) -> bool:
        return peer_id in self._crashed

    @property
    def crashed_peers(self) -> frozenset[int]:
        """Snapshot of currently crashed peer ids."""
        return frozenset(self._crashed)

    def schedule_crash(
        self, sim: Simulator, peer_id: int, at_ms: float, recover_at_ms: float | None = None
    ) -> tuple[Timer, Timer | None]:
        """Arrange a crash (and optional recovery) on the virtual clock."""
        crash_timer = sim.call_at(at_ms, lambda: self.crash(peer_id))
        recover_timer = None
        if recover_at_ms is not None:
            if recover_at_ms <= at_ms:
                raise ValueError("recovery must come after the crash")
            recover_timer = sim.call_at(recover_at_ms, lambda: self.recover(peer_id))
        return (crash_timer, recover_timer)

    # -- grey failures -------------------------------------------------

    def slow(
        self,
        peer_id: int,
        latency_factor: float = 1.0,
        service_factor: float = 1.0,
    ) -> None:
        """Grey-fail a peer: multiply the delay of every link it touches
        by ``latency_factor`` and its per-request service time by
        ``service_factor`` (i.e. throttle its service *rate* by the same
        divisor).  Factors of 1.0 leave that dimension unchanged."""
        if latency_factor < 1.0 or service_factor < 1.0:
            raise ValueError("slowdown factors must be >= 1")
        self._slowed[peer_id] = (latency_factor, service_factor)

    def unslow(self, peer_id: int) -> None:
        """Restore a grey-failed peer to full speed (idempotent)."""
        self._slowed.pop(peer_id, None)

    def is_slow(self, peer_id: int) -> bool:
        return peer_id in self._slowed

    @property
    def slow_peers(self) -> frozenset[int]:
        """Snapshot of currently grey-failed peer ids."""
        return frozenset(self._slowed)

    def latency_factor(self, peer_id: int) -> float:
        """Latency multiplier of links touching ``peer_id`` (1.0 = healthy)."""
        state = self._slowed.get(peer_id)
        return state[0] if state is not None else 1.0

    def link_factor(self, sender: int, recipient: int) -> float:
        """Latency multiplier of the directed link: the worse endpoint wins."""
        if not self._slowed:
            return 1.0
        return max(self.latency_factor(sender), self.latency_factor(recipient))

    def service_factor(self, peer_id: int) -> float:
        """Service-time multiplier of ``peer_id`` (1.0 = healthy)."""
        state = self._slowed.get(peer_id)
        return state[1] if state is not None else 1.0

    def schedule_slow(
        self,
        sim: Simulator,
        peer_id: int,
        at_ms: float,
        latency_factor: float = 1.0,
        service_factor: float = 1.0,
        recover_at_ms: float | None = None,
    ) -> tuple[Timer, Timer | None]:
        """Arrange a grey failure (and optional recovery) on the clock,
        mirroring :meth:`schedule_crash`."""
        if latency_factor < 1.0 or service_factor < 1.0:
            raise ValueError("slowdown factors must be >= 1")
        slow_timer = sim.call_at(
            at_ms, lambda: self.slow(peer_id, latency_factor, service_factor)
        )
        recover_timer = None
        if recover_at_ms is not None:
            if recover_at_ms <= at_ms:
                raise ValueError("recovery must come after the slowdown")
            recover_timer = sim.call_at(recover_at_ms, lambda: self.unslow(peer_id))
        return (slow_timer, recover_timer)

    # -- loss ----------------------------------------------------------

    def drops_delivery(self) -> bool:
        """Sample whether the next delivery is lost in flight."""
        if self.drop_probability == 0.0:
            return False
        return bool(self._rng.random() < self.drop_probability)
