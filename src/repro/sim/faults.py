"""Fault injection for the event-driven transport.

Two fault classes the paper's testbed could not explore:

- **message loss** — every directed delivery is independently dropped with
  a configurable probability (one deterministic stream per injector, so a
  seed replays the same losses);
- **peer crashes** — a crashed peer silently ignores everything addressed
  to it until it recovers, which is how a fail-stop node looks from the
  outside: no error, just no reply.

Crashes can be toggled directly (:meth:`crash` / :meth:`recover`) or
scheduled on a :class:`~repro.sim.kernel.Simulator` clock to model churn
mid-run.
"""

from __future__ import annotations

import numpy as np

from repro.sim.kernel import Simulator, Timer
from repro.util.rng import derive_rng

__all__ = ["FaultInjector"]


class FaultInjector:
    """Loss and crash state consulted by :class:`~repro.sim.network.AsyncNetwork`."""

    def __init__(self, drop_probability: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop probability must be within [0, 1)")
        self.drop_probability = drop_probability
        self._rng: np.random.Generator = derive_rng(seed, "sim/faults")
        self._crashed: set[int] = set()

    # -- crashes -------------------------------------------------------

    def crash(self, peer_id: int) -> None:
        """Fail-stop a peer: it stops handling and acknowledging messages."""
        self._crashed.add(peer_id)

    def recover(self, peer_id: int) -> None:
        """Bring a crashed peer back (idempotent)."""
        self._crashed.discard(peer_id)

    def is_crashed(self, peer_id: int) -> bool:
        return peer_id in self._crashed

    @property
    def crashed_peers(self) -> frozenset[int]:
        """Snapshot of currently crashed peer ids."""
        return frozenset(self._crashed)

    def schedule_crash(
        self, sim: Simulator, peer_id: int, at_ms: float, recover_at_ms: float | None = None
    ) -> tuple[Timer, Timer | None]:
        """Arrange a crash (and optional recovery) on the virtual clock."""
        crash_timer = sim.call_at(at_ms, lambda: self.crash(peer_id))
        recover_timer = None
        if recover_at_ms is not None:
            if recover_at_ms <= at_ms:
                raise ValueError("recovery must come after the crash")
            recover_timer = sim.call_at(recover_at_ms, lambda: self.recover(peer_id))
        return (crash_timer, recover_timer)

    # -- loss ----------------------------------------------------------

    def drops_delivery(self) -> bool:
        """Sample whether the next delivery is lost in flight."""
        if self.drop_probability == 0.0:
            return False
        return bool(self._rng.random() < self.drop_probability)
