"""The discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock (milliseconds, starting at 0) and
a priority queue of scheduled callbacks.  Running the simulator pops events
in time order and advances the clock to each event's timestamp — no wall
time passes, so a 90-second timeout scenario executes in microseconds and a
million-message run is bounded by Python speed, not by sleeping.

Determinism: ties in virtual time break by scheduling order (a
monotonically increasing sequence number), so the same program produces the
same event order on every run.  Pair this with
:class:`~repro.net.latency.SeededLatency` and an entire fault-injected
experiment replays bit-for-bit from its seed.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.futures import SimFuture

__all__ = ["Simulator", "Timer"]


class Timer:
    """Handle to one scheduled callback; cancellation is O(1) (the event
    stays queued but is skipped when popped).

    ``on_cancel`` lets the owning :class:`Simulator` keep an exact count of
    live (not-fired, not-cancelled) events without scanning the heap: it
    runs once, on the first effective cancel of a timer that has not fired.
    """

    __slots__ = ("time", "_fn", "_cancelled", "_fired", "_on_cancel")

    def __init__(
        self,
        time: float,
        fn: Callable[[], None],
        on_cancel: Callable[[], None] | None = None,
    ) -> None:
        self.time = time
        self._fn = fn
        self._cancelled = False
        self._fired = False
        self._on_cancel = on_cancel

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent).

        Cancelling after the timer already fired is a no-op — common when a
        reply callback races its own timeout timer.
        """
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        self._fn = _noop
        if self._on_cancel is not None:
            self._on_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        self._fired = True
        self._fn()


def _noop() -> None:
    return None


class Simulator:
    """Virtual clock plus the event queue driving it."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Timer]] = []
        self._seq = count()
        self._live = 0

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Live scheduled events: not yet fired and not cancelled.

        Cancelled timers stay in the heap until popped (cancellation is
        O(1)), so ``len(self._heap)`` over-reports pending work — this
        count is maintained exactly instead, and is what the health
        sampler exports as the ``sim.pending_events`` gauge.
        """
        return self._live

    @property
    def queued(self) -> int:
        """Raw heap occupancy, cancelled-but-unpopped entries included."""
        return len(self._heap)

    # -- scheduling ----------------------------------------------------

    def _on_timer_cancel(self) -> None:
        self._live -= 1

    def call_at(self, time: float, fn: Callable[[], None]) -> Timer:
        """Schedule ``fn`` to run at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} ms; clock is already at {self._now} ms"
            )
        timer = Timer(time, fn, on_cancel=self._on_timer_cancel)
        heapq.heappush(self._heap, (time, next(self._seq), timer))
        self._live += 1
        return timer

    def call_later(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Schedule ``fn`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"delay cannot be negative, got {delay}")
        return self.call_at(self._now + delay, fn)

    # -- execution -----------------------------------------------------

    def step(self) -> bool:
        """Fire the next event (advancing the clock); False when empty."""
        while self._heap:
            time, _seq, timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = time
            self._live -= 1
            timer._fire()
            return True
        return False

    def run(self, until: float | None = None) -> float:
        """Fire events until the queue drains (or virtual time ``until``).

        Returns the clock value when execution stopped.  With ``until``,
        events beyond the horizon stay queued and the clock is advanced to
        exactly ``until``.
        """
        if until is not None and until < self._now:
            raise SimulationError("cannot run backwards in time")
        while self._heap:
            time, _seq, timer = self._heap[0]
            if timer.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self._now = time
            self._live -= 1
            timer._fire()
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def run_until_complete(self, future: SimFuture[Any]) -> Any:
        """Drive the event loop until ``future`` settles; return its result.

        Raises :class:`~repro.errors.SimulationError` if the queue drains
        while the future is still pending (a deadlock: whatever would have
        settled it was lost and no timeout was armed), and re-raises the
        future's own error if it was rejected.
        """
        while not future.done:
            if not self.step():
                raise SimulationError(
                    "event queue drained but the awaited future is still "
                    "pending (lost message with no timeout armed?)"
                )
        return future.result()
