"""Futures for the discrete-event simulator.

A :class:`SimFuture` is the value of an operation that completes at a later
*virtual* time: an in-flight request, a timer, a whole query.  It is
deliberately tiny — settle once, run callbacks immediately on settle — and
synchronous under the hood: the simulator's event loop is single-threaded,
so no locking is needed, and "concurrency" means interleaved virtual-time
events, not threads.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Sequence, TypeVar

from repro.errors import FutureCancelledError

T = TypeVar("T")

__all__ = ["SimFuture", "gather"]

_PENDING = "pending"
_RESOLVED = "resolved"
_REJECTED = "rejected"
_CANCELLED = "cancelled"


class SimFuture(Generic[T]):
    """A single-assignment slot filled at some later virtual time."""

    __slots__ = ("_state", "_value", "_error", "_callbacks")

    def __init__(self) -> None:
        self._state = _PENDING
        self._value: T | None = None
        self._error: BaseException | None = None
        self._callbacks: list[Callable[["SimFuture[T]"], None]] = []

    # -- inspection ----------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether the future has settled (either way)."""
        return self._state != _PENDING

    @property
    def failed(self) -> bool:
        """Whether the future settled with an error (cancellation counts:
        a cancelled future carries a
        :class:`~repro.errors.FutureCancelledError`, so fan-out code that
        partitions outcomes into values and exceptions needs no third
        case)."""
        return self._state in (_REJECTED, _CANCELLED)

    @property
    def cancelled(self) -> bool:
        """Whether the future was settled by :meth:`cancel`."""
        return self._state == _CANCELLED

    def result(self) -> T:
        """The resolved value; raises the error if rejected/cancelled, or
        :class:`RuntimeError` if still pending."""
        if self._state == _RESOLVED:
            return self._value  # type: ignore[return-value]
        if self._state in (_REJECTED, _CANCELLED):
            assert self._error is not None
            raise self._error
        raise RuntimeError("future is still pending")

    def exception(self) -> BaseException | None:
        """The rejection/cancellation error, or None when pending/resolved."""
        return self._error

    # -- settling ------------------------------------------------------

    def resolve(self, value: T) -> None:
        """Settle successfully with ``value``."""
        self._settle(_RESOLVED, value=value)

    def reject(self, error: BaseException) -> None:
        """Settle with an error."""
        self._settle(_REJECTED, error=error)

    def cancel(self) -> bool:
        """Abandon a pending future; returns whether anything changed.

        Cancelling settles the future with a
        :class:`~repro.errors.FutureCancelledError` and runs its callbacks
        — owners of associated resources (timeout timers, queued retries)
        hook those callbacks to release them.  Cancelling an
        already-settled future (the reply won the race) is a no-op, as is
        a second cancel.
        """
        if self.done:
            return False
        self._settle(_CANCELLED, error=FutureCancelledError("future cancelled"))
        return True

    def _settle(self, state: str, value: Any = None, error: BaseException | None = None) -> None:
        if self._state == _CANCELLED:
            # The operation was abandoned; a late resolution (the losing
            # hedge's reply finally landing) is dropped silently.
            return
        if self._state != _PENDING:
            raise RuntimeError(f"future already {self._state}")
        self._state = state
        self._value = value
        self._error = error
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    # -- composition ---------------------------------------------------

    def add_done_callback(self, callback: Callable[["SimFuture[T]"], None]) -> None:
        """Run ``callback(self)`` on settle (immediately if already settled)."""
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def then(self, on_value: Callable[[T], Any]) -> "SimFuture[Any]":
        """Chain: a future of ``on_value(result)``, propagating errors.

        If ``on_value`` returns a :class:`SimFuture` the chain flattens
        into it (so multi-round-trip protocols compose left to right).
        """
        out: SimFuture[Any] = SimFuture()

        def on_done(settled: "SimFuture[T]") -> None:
            if settled.failed:
                out.reject(settled.exception())  # type: ignore[arg-type]
                return
            try:
                mapped = on_value(settled.result())
            except Exception as exc:  # noqa: BLE001 — forwarded, not dropped
                out.reject(exc)
                return
            if isinstance(mapped, SimFuture):
                mapped.add_done_callback(
                    lambda inner: out.reject(inner.exception())  # type: ignore[arg-type]
                    if inner.failed
                    else out.resolve(inner.result())
                )
            else:
                out.resolve(mapped)

        self.add_done_callback(on_done)
        return out


def gather(futures: Sequence[SimFuture[Any]]) -> SimFuture[list[Any]]:
    """A future of every input's outcome, resolving when *all* settle.

    Rejections do not fail the gather: each slot of the resolved list holds
    either the value or the exception instance, in input order — the
    query engine needs exactly this to degrade to the replies that survived
    while still seeing which chains timed out.
    """
    out: SimFuture[list[Any]] = SimFuture()
    if not futures:
        out.resolve([])
        return out
    results: list[Any] = [None] * len(futures)
    remaining = len(futures)

    def make_callback(slot: int) -> Callable[[SimFuture[Any]], None]:
        def on_done(settled: SimFuture[Any]) -> None:
            nonlocal remaining
            results[slot] = settled.exception() if settled.failed else settled.result()
            remaining -= 1
            if remaining == 0:
                out.resolve(results)

        return on_done

    for slot, future in enumerate(futures):
        future.add_done_callback(make_callback(slot))
    return out
