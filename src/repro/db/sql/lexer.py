"""Tokenizer for the restricted SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import SQLSyntaxError

__all__ = ["Token", "TokenKind", "tokenize", "KEYWORDS"]

# DATE is deliberately *not* a keyword: the paper's schema has an attribute
# called ``date``, so ``DATE '2000-01-01'`` literals are recognized by the
# parser with one token of lookahead instead.
KEYWORDS = {"SELECT", "FROM", "WHERE", "AND", "BETWEEN", "ORDER", "BY", "LIMIT", "ASC", "DESC"}

_COMPARATORS = ("<=", ">=", "<>", "<", ">", "=")
_PUNCTUATION = {",", ".", "(", ")", "*"}


class TokenKind(Enum):
    """Lexical categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    PUNCT = "punct"
    END = "end"


@dataclass(frozen=True)
class Token:
    """One token with its source position (for error messages)."""

    kind: TokenKind
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """Whether this token is the given keyword (case-insensitive match
        already applied at lex time)."""
        return self.kind is TokenKind.KEYWORD and self.text == word


def tokenize(sql: str) -> list[Token]:
    """Split ``sql`` into tokens; raises :class:`SQLSyntaxError` on garbage."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            end = sql.find("'", i + 1)
            if end < 0:
                raise SQLSyntaxError(f"unterminated string literal at {i}")
            tokens.append(Token(TokenKind.STRING, sql[i + 1 : end], i))
            i = end + 1
            continue
        matched_op = next(
            (op for op in _COMPARATORS if sql.startswith(op, i)), None
        )
        if matched_op is not None:
            tokens.append(Token(TokenKind.OP, matched_op, i))
            i += len(matched_op)
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenKind.PUNCT, ch, i))
            i += 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and sql[i + 1].isdigit()):
            j = i + 1
            while j < n and sql[j].isdigit():
                j += 1
            text = sql[i:j]
            tokens.append(Token(TokenKind.NUMBER, text, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenKind.IDENT, word, i))
            i = j
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenKind.END, "", n))
    return tokens
