"""A restricted SQL front end for the paper's query class.

Supported statements::

    SELECT <columns | *> FROM <relations>
    [WHERE <condition> AND <condition> AND ...]

where each condition is one of:

- a comparison between a column and a literal (``age >= 30``,
  ``30 <= age``, ``diagnosis = 'Glaucoma'``, ``date <= DATE '2002-12-31'``);
- a ``BETWEEN`` shorthand (``age BETWEEN 30 AND 50``);
- an equi-join between two columns (``Patient.patient_id =
  Diagnosis.patient_id``).

This is exactly the class of queries the paper's Section 2 poses
(conjunctive select-project-join with single-attribute selections).
"""

from repro.db.sql.ast import (
    ColumnRef,
    Comparison,
    JoinCondition,
    Literal,
    SelectStatement,
)
from repro.db.sql.parser import parse_select

__all__ = [
    "parse_select",
    "SelectStatement",
    "ColumnRef",
    "Comparison",
    "JoinCondition",
    "Literal",
]
