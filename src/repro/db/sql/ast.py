"""Abstract syntax for the restricted SQL subset."""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

__all__ = ["ColumnRef", "Literal", "Comparison", "JoinCondition", "OrderKey", "SelectStatement"]


@dataclass(frozen=True)
class ColumnRef:
    """A possibly-qualified column reference (``Patient.age`` or ``age``)."""

    relation: str | None
    name: str

    def __str__(self) -> str:
        return f"{self.relation}.{self.name}" if self.relation else self.name


@dataclass(frozen=True)
class Literal:
    """A literal value: int, string, or date."""

    value: "int | str | _dt.date"

    @property
    def kind(self) -> str:
        """'int', 'str' or 'date'."""
        if isinstance(self.value, bool):
            raise TypeError("boolean literals are not part of the subset")
        if isinstance(self.value, int):
            return "int"
        if isinstance(self.value, _dt.date):
            return "date"
        return "str"


@dataclass(frozen=True)
class Comparison:
    """``column OP literal`` with OP in {=, <, <=, >, >=}.

    The parser normalizes literal-first forms (``30 <= age``) by flipping
    the operator, so downstream code only sees column-first comparisons.
    """

    column: ColumnRef
    op: str
    literal: Literal

    def __post_init__(self) -> None:
        if self.op not in {"=", "<", "<=", ">", ">="}:
            raise ValueError(f"unsupported comparison operator {self.op!r}")


@dataclass(frozen=True)
class JoinCondition:
    """An equi-join ``left = right`` between columns of two relations."""

    left: ColumnRef
    right: ColumnRef


@dataclass(frozen=True)
class OrderKey:
    """One ORDER BY key: a column and its direction."""

    column: ColumnRef
    ascending: bool = True


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT.

    ``columns`` empty means ``SELECT *``.  ``comparisons`` and ``joins``
    are the conjuncts of the WHERE clause, already separated by kind.
    ``order_by`` and ``limit`` are evaluated locally at the querying peer
    after the joins (they do not affect partition location).
    """

    columns: tuple[ColumnRef, ...]
    relations: tuple[str, ...]
    comparisons: tuple[Comparison, ...]
    joins: tuple[JoinCondition, ...]
    order_by: "tuple[OrderKey, ...]" = ()
    limit: "int | None" = None

    @property
    def is_star(self) -> bool:
        """Whether the statement selects every column."""
        return not self.columns
