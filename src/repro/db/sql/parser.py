"""Recursive-descent parser for the restricted SQL subset."""

from __future__ import annotations

import datetime as _dt

from repro.db.sql.ast import (
    ColumnRef,
    Comparison,
    JoinCondition,
    Literal,
    OrderKey,
    SelectStatement,
)
from repro.db.sql.lexer import Token, TokenKind, tokenize
from repro.errors import SQLSyntaxError

__all__ = ["parse_select"]

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if not token.is_keyword(word):
            raise SQLSyntaxError(
                f"expected {word} at position {token.position}, got {token.text!r}"
            )
        return token

    def _expect(self, kind: TokenKind) -> Token:
        token = self._advance()
        if token.kind is not kind:
            raise SQLSyntaxError(
                f"expected {kind.value} at position {token.position}, "
                f"got {token.text!r}"
            )
        return token

    def _at_date_literal(self) -> bool:
        """Whether the cursor sits on ``DATE '<iso>'`` (needs lookahead
        because ``date`` is also a valid column name)."""
        token = self._peek()
        if token.kind is not TokenKind.IDENT or token.text.upper() != "DATE":
            return False
        lookahead = self._tokens[self._pos + 1]
        return lookahead.kind is TokenKind.STRING

    def _accept_punct(self, text: str) -> bool:
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text == text:
            self._advance()
            return True
        return False

    # -- grammar ---------------------------------------------------------

    def parse(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        columns = self._parse_select_list()
        self._expect_keyword("FROM")
        relations = self._parse_relation_list()
        comparisons: list[Comparison] = []
        joins: list[JoinCondition] = []
        if self._peek().is_keyword("WHERE"):
            self._advance()
            self._parse_conditions(comparisons, joins)
        order_by = self._parse_order_by()
        limit = self._parse_limit()
        end = self._advance()
        if end.kind is not TokenKind.END:
            raise SQLSyntaxError(
                f"unexpected trailing input at position {end.position}: {end.text!r}"
            )
        return SelectStatement(
            columns=tuple(columns),
            relations=tuple(relations),
            comparisons=tuple(comparisons),
            joins=tuple(joins),
            order_by=order_by,
            limit=limit,
        )

    def _parse_order_by(self) -> tuple[OrderKey, ...]:
        if not self._peek().is_keyword("ORDER"):
            return ()
        self._advance()
        self._expect_keyword("BY")
        keys = [self._parse_order_key()]
        while self._accept_punct(","):
            keys.append(self._parse_order_key())
        return tuple(keys)

    def _parse_order_key(self) -> OrderKey:
        column = self._parse_column()
        ascending = True
        token = self._peek()
        if token.is_keyword("ASC"):
            self._advance()
        elif token.is_keyword("DESC"):
            self._advance()
            ascending = False
        return OrderKey(column=column, ascending=ascending)

    def _parse_limit(self) -> "int | None":
        if not self._peek().is_keyword("LIMIT"):
            return None
        self._advance()
        token = self._expect(TokenKind.NUMBER)
        value = int(token.text)
        if value < 0:
            raise SQLSyntaxError(f"LIMIT must be non-negative, got {value}")
        return value

    def _parse_select_list(self) -> list[ColumnRef]:
        if self._accept_punct("*"):
            return []
        columns = [self._parse_column()]
        while self._accept_punct(","):
            columns.append(self._parse_column())
        return columns

    def _parse_relation_list(self) -> list[str]:
        relations = [self._expect(TokenKind.IDENT).text]
        while self._accept_punct(","):
            relations.append(self._expect(TokenKind.IDENT).text)
        if len(set(relations)) != len(relations):
            raise SQLSyntaxError("duplicate relation in FROM clause")
        return relations

    def _parse_column(self) -> ColumnRef:
        first = self._expect(TokenKind.IDENT).text
        if self._accept_punct("."):
            second = self._expect(TokenKind.IDENT).text
            return ColumnRef(relation=first, name=second)
        return ColumnRef(relation=None, name=first)

    def _parse_conditions(
        self, comparisons: list[Comparison], joins: list[JoinCondition]
    ) -> None:
        self._parse_condition(comparisons, joins)
        while self._peek().is_keyword("AND"):
            self._advance()
            self._parse_condition(comparisons, joins)

    def _parse_condition(
        self, comparisons: list[Comparison], joins: list[JoinCondition]
    ) -> None:
        token = self._peek()
        if token.kind is TokenKind.IDENT and not self._at_date_literal():
            column = self._parse_column()
            if self._peek().is_keyword("BETWEEN"):
                self._advance()
                low = self._parse_literal()
                self._expect_keyword("AND")
                high = self._parse_literal()
                comparisons.append(Comparison(column, ">=", low))
                comparisons.append(Comparison(column, "<=", high))
                return
            op = self._expect(TokenKind.OP).text
            if op == "<>":
                raise SQLSyntaxError("inequality predicates are not supported")
            rhs = self._peek()
            if rhs.kind is TokenKind.IDENT and not self._at_date_literal():
                right = self._parse_column()
                if op != "=":
                    raise SQLSyntaxError(
                        f"only equi-joins are supported, got {op!r} "
                        f"at position {rhs.position}"
                    )
                joins.append(JoinCondition(column, right))
                return
            literal = self._parse_literal()
            comparisons.append(Comparison(column, op, literal))
            return
        # literal-first comparison: 30 <= age
        literal = self._parse_literal()
        op = self._expect(TokenKind.OP).text
        if op == "<>":
            raise SQLSyntaxError("inequality predicates are not supported")
        column = self._parse_column()
        comparisons.append(Comparison(column, _FLIPPED[op], literal))

    def _parse_literal(self) -> Literal:
        token = self._advance()
        if token.kind is TokenKind.NUMBER:
            return Literal(int(token.text))
        if token.kind is TokenKind.STRING:
            return Literal(token.text)
        if token.kind is TokenKind.IDENT and token.text.upper() == "DATE":
            text = self._expect(TokenKind.STRING).text
            try:
                return Literal(_dt.date.fromisoformat(text))
            except ValueError as exc:
                raise SQLSyntaxError(
                    f"bad date literal {text!r} at position {token.position}"
                ) from exc
        raise SQLSyntaxError(
            f"expected a literal at position {token.position}, got {token.text!r}"
        )


def parse_select(sql: str) -> SelectStatement:
    """Parse one SELECT statement of the restricted subset.

    >>> stmt = parse_select(
    ...     "SELECT prescription FROM Prescription "
    ...     "WHERE date BETWEEN DATE '2000-01-01' AND DATE '2002-12-31'"
    ... )
    >>> stmt.relations
    ('Prescription',)
    """
    statement = _Parser(tokenize(sql)).parse()
    return statement
