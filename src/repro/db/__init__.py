"""Relational substrate: schemas, relations, partitions, SQL, plans.

The paper shares data "in the form of database relations": peers cache
*horizontal partitions* — the tuples of one relation matching a range
selection on one attribute.  This subpackage provides everything the
examples and the full-query front end need:

- typed schemas and in-memory relations (:mod:`repro.db.schema`,
  :mod:`repro.db.relation`);
- selection predicates and horizontal partitions (:mod:`repro.db.predicates`,
  :mod:`repro.db.partition`);
- a restricted SQL parser for the paper's query class
  (:mod:`repro.db.sql`);
- a select-pushdown planner and a local executor with hash joins
  (:mod:`repro.db.plan`) — "all the selects are moved toward the leaves",
  the "well known algebraic optimization technique" of Section 2.
"""

from repro.db.catalog import Catalog, medical_catalog, medical_schema
from repro.db.partition import Partition, PartitionDescriptor
from repro.db.predicates import (
    EqualityPredicate,
    Predicate,
    RangePredicate,
    TruePredicate,
)
from repro.db.relation import Relation
from repro.db.stats import EquiWidthHistogram, TableStatistics, analyze
from repro.db.schema import Attribute, AttrType, GlobalSchema, RelationSchema

__all__ = [
    "AttrType",
    "Attribute",
    "RelationSchema",
    "GlobalSchema",
    "Relation",
    "Partition",
    "PartitionDescriptor",
    "Predicate",
    "RangePredicate",
    "EqualityPredicate",
    "TruePredicate",
    "Catalog",
    "EquiWidthHistogram",
    "TableStatistics",
    "analyze",
    "medical_schema",
    "medical_catalog",
]
