"""Horizontal partitions: the unit of caching and matching.

"A query specifies a range over an attribute of a relation.  We refer to
the resulting set of tuples defined by this range as a data partition"
(paper, footnote 1).  A :class:`PartitionDescriptor` is the metadata the
DHT stores and matches on; a :class:`Partition` additionally carries the
tuples, which travel from the providing peer to the querying peer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ranges.interval import IntRange
from repro.similarity.measures import containment, jaccard

__all__ = ["PartitionDescriptor", "Partition"]


@dataclass(frozen=True, order=True)
class PartitionDescriptor:
    """Identity of a cached partition: relation, attribute, range."""

    relation: str
    attribute: str
    range: IntRange

    def jaccard_to(self, query: IntRange) -> float:
        """Jaccard similarity of this partition's range to a query range."""
        return jaccard(query, self.range)

    def containment_of(self, query: IntRange) -> float:
        """Fraction of ``query`` this partition covers (its recall)."""
        return containment(query, self.range)

    def answers_exactly(self, query: IntRange) -> bool:
        """Whether this partition *is* the queried range."""
        return self.range == query

    def can_answer(self, query: IntRange) -> bool:
        """Whether this partition fully contains the queried range."""
        return self.range.contains_range(query)

    def __str__(self) -> str:
        return f"{self.relation}.{self.attribute}{self.range}"


@dataclass(frozen=True)
class Partition:
    """A descriptor plus the actual tuples of the partition."""

    descriptor: PartitionDescriptor
    rows: tuple[tuple[object, ...], ...]

    @classmethod
    def from_rows(
        cls,
        relation: str,
        attribute: str,
        r: IntRange,
        rows: list[tuple[object, ...]],
    ) -> "Partition":
        """Build from a freshly computed selection result."""
        return cls(
            descriptor=PartitionDescriptor(relation, attribute, r),
            rows=tuple(rows),
        )

    def restrict(self, query: IntRange, attribute_position: int) -> "Partition":
        """The sub-partition of rows whose key attribute falls in ``query``.

        Used by the querying peer to trim a broader matched partition down
        to exactly the requested range before joining.
        """
        clipped = self.descriptor.range.intersect(query)
        if clipped is None:
            return Partition(
                descriptor=PartitionDescriptor(
                    self.descriptor.relation, self.descriptor.attribute, query
                ),
                rows=(),
            )
        kept = tuple(
            row
            for row in self.rows
            if row[attribute_position] in clipped  # type: ignore[operator]
        )
        return Partition(
            descriptor=PartitionDescriptor(
                self.descriptor.relation, self.descriptor.attribute, clipped
            ),
            rows=kept,
        )

    @property
    def size_bytes(self) -> int:
        """Modelled wire size: 16 bytes per stored field plus headers."""
        width = len(self.rows[0]) if self.rows else 0
        return 64 + 16 * width * len(self.rows)
