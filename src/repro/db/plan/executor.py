"""Local plan execution at the querying peer.

"The located peers caching relevant partitions can send the data over to
the requesting peer which can now compute the remaining query locally using
the available data" (Section 2).  This module is that local computation:
hash joins, residual filters and projection over whatever tuples the
:class:`PartitionProvider` produced for each leaf.

Because the P2P cache is *approximate*, a leaf may come back incomplete;
the provider reports per-leaf coverage, and the executor aggregates it so
callers can tell the user which part of the answer is present (the paper's
suggestion at the end of Section 5.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from dataclasses import dataclass, field

from repro.db.catalog import Catalog
from repro.db.plan.nodes import (
    ColumnEqualsFilter,
    JoinNode,
    LeafSelection,
    PlanNode,
    ProjectNode,
)
from repro.db.schema import GlobalSchema
from repro.errors import PlanningError

__all__ = [
    "PartitionProvider",
    "SourceProvider",
    "FetchResult",
    "ExecutionStats",
    "QueryResultSet",
    "execute_plan",
]

Row = dict[tuple[str, str], object]


@dataclass(frozen=True)
class FetchResult:
    """Tuples produced for one leaf, with provenance.

    ``coverage`` is the fraction of the leaf's selection range the produced
    tuples are guaranteed to cover (1.0 for a source fetch or an exact /
    containing cache hit; lower for a partial approximate match).
    """

    rows: list[tuple[object, ...]]
    origin: str  # "source", "cache", or "cache+store"
    coverage: float = 1.0
    overlay_hops: int = 0
    peers_contacted: int = 0


class PartitionProvider(ABC):
    """Produces the tuples satisfying a leaf selection."""

    @abstractmethod
    def fetch(self, leaf: LeafSelection) -> FetchResult:
        """Tuples of ``leaf.relation`` satisfying the primary predicate.

        The executor re-applies *all* leaf predicates afterwards, so a
        provider may return a superset (e.g. a broader cached partition).
        """


class SourceProvider(PartitionProvider):
    """Fetch every leaf from the base relations (no P2P involved)."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def fetch(self, leaf: LeafSelection) -> FetchResult:
        if leaf.primary is None:
            self.catalog.source_accesses += 1
            rows = list(self.catalog.relation(leaf.relation).scan())
        else:
            rows = self.catalog.fetch_from_source(leaf.primary)
        return FetchResult(rows=rows, origin="source", coverage=1.0)


@dataclass
class ExecutionStats:
    """Aggregated execution telemetry."""

    leaf_origins: dict[str, str] = field(default_factory=dict)
    leaf_coverage: dict[str, float] = field(default_factory=dict)
    overlay_hops: int = 0
    peers_contacted: int = 0
    rows_fetched: int = 0

    @property
    def min_coverage(self) -> float:
        """A lower bound on answer completeness: the worst leaf coverage."""
        if not self.leaf_coverage:
            return 1.0
        return min(self.leaf_coverage.values())


@dataclass
class QueryResultSet:
    """Projected rows plus execution telemetry."""

    columns: tuple[tuple[str, str], ...]
    rows: list[tuple[object, ...]]
    stats: ExecutionStats

    def decoded_rows(self, schema: GlobalSchema) -> list[tuple[object, ...]]:
        """Rows with stored codes converted back to user values (dates)."""
        attrs = [schema.relation(rel).attribute(attr) for rel, attr in self.columns]
        return [
            tuple(a.decode(v) for a, v in zip(attrs, row)) for row in self.rows
        ]

    def __len__(self) -> int:
        return len(self.rows)


def execute_plan(
    plan: ProjectNode,
    schema: GlobalSchema,
    provider: PartitionProvider,
) -> QueryResultSet:
    """Evaluate ``plan`` bottom-up and return the projected result set.

    Ordering happens on the pre-projection rows (any resolved column can be
    a sort key), then projection, then the limit.
    """
    stats = ExecutionStats()
    rows = _evaluate(plan.child, schema, provider, stats)
    for relation, attribute, ascending in reversed(plan.order_by):
        rows.sort(key=lambda row: row[(relation, attribute)], reverse=not ascending)  # type: ignore[arg-type,return-value]
    projected = [
        tuple(row[column] for column in plan.columns) for row in rows
    ]
    if plan.limit is not None:
        projected = projected[: plan.limit]
    return QueryResultSet(columns=plan.columns, rows=projected, stats=stats)


def _evaluate(
    node: PlanNode,
    schema: GlobalSchema,
    provider: PartitionProvider,
    stats: ExecutionStats,
) -> list[Row]:
    if isinstance(node, LeafSelection):
        return _evaluate_leaf(node, schema, provider, stats)
    if isinstance(node, JoinNode):
        left_rows = _evaluate(node.left, schema, provider, stats)
        right_rows = _evaluate(node.right, schema, provider, stats)
        return _hash_join(left_rows, right_rows, node.left_column, node.right_column)
    if isinstance(node, ColumnEqualsFilter):
        child_rows = _evaluate(node.child, schema, provider, stats)
        return [
            row
            for row in child_rows
            if row[node.left_column] == row[node.right_column]
        ]
    raise PlanningError(f"cannot evaluate plan node {type(node).__name__}")


def _evaluate_leaf(
    leaf: LeafSelection,
    schema: GlobalSchema,
    provider: PartitionProvider,
    stats: ExecutionStats,
) -> list[Row]:
    relation_schema = schema.relation(leaf.relation)
    fetched = provider.fetch(leaf)
    stats.leaf_origins[leaf.relation] = fetched.origin
    stats.leaf_coverage[leaf.relation] = fetched.coverage
    stats.overlay_hops += fetched.overlay_hops
    stats.peers_contacted += fetched.peers_contacted
    stats.rows_fetched += len(fetched.rows)
    predicates = leaf.all_predicates()
    out: list[Row] = []
    for raw in fetched.rows:
        if all(p.matches(raw, relation_schema) for p in predicates):
            out.append(
                {
                    (leaf.relation, attr.name): value
                    for attr, value in zip(relation_schema.attributes, raw)
                }
            )
    return out


def _hash_join(
    left_rows: list[Row],
    right_rows: list[Row],
    left_column: tuple[str, str],
    right_column: tuple[str, str],
) -> list[Row]:
    """Classic build/probe hash join; builds on the smaller input."""
    if len(left_rows) <= len(right_rows):
        build, probe = left_rows, right_rows
        build_col, probe_col = left_column, right_column
    else:
        build, probe = right_rows, left_rows
        build_col, probe_col = right_column, left_column
    table: dict[object, list[Row]] = defaultdict(list)
    for row in build:
        table[row[build_col]].append(row)
    out: list[Row] = []
    for row in probe:
        for match in table.get(row[probe_col], ()):
            merged = dict(match)
            merged.update(row)
            out.append(merged)
    return out
