"""Select-pushdown planner for the restricted SQL subset."""

from __future__ import annotations

import datetime as _dt
from collections import defaultdict

from repro.db.predicates import EqualityPredicate, Predicate, RangePredicate
from repro.db.plan.nodes import (
    ColumnEqualsFilter,
    JoinNode,
    LeafSelection,
    PlanNode,
    ProjectNode,
)
from repro.db.schema import AttrType, GlobalSchema, RelationSchema
from repro.db.sql.ast import ColumnRef, Comparison, SelectStatement
from repro.errors import PlanningError, UnsupportedQueryError
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange

__all__ = ["plan_select"]


def plan_select(
    statement: SelectStatement,
    schema: GlobalSchema,
    statistics: "dict[str, object] | None" = None,
) -> ProjectNode:
    """Build a pushed-down plan (Figure 1's shape) from a parsed SELECT.

    ``statistics`` optionally maps relation name to
    :class:`~repro.db.stats.TableStatistics`; when present, the join tree
    is ordered greedily by estimated leaf cardinality (smallest first), so
    hash-join build sides stay small.  Without statistics the FROM-clause
    order is used, which keeps plans deterministic.

    Raises :class:`PlanningError` for semantic problems (unknown columns,
    disconnected join graphs) and :class:`UnsupportedQueryError` for
    statements outside the paper's query class (e.g. two range selections
    on different attributes of the same relation).
    """
    for name in statement.relations:
        if not schema.has_relation(name):
            raise PlanningError(f"unknown relation {name!r}")

    comparisons = [
        (_resolve(c.column, statement, schema), c) for c in statement.comparisons
    ]
    joins = [
        (
            _resolve(j.left, statement, schema),
            _resolve(j.right, statement, schema),
        )
        for j in statement.joins
    ]

    leaves = {
        name: _build_leaf(
            name,
            schema.relation(name),
            [c for col, c in comparisons if col[0] == name],
            [col for col, _ in comparisons if col[0] == name],
        )
        for name in statement.relations
    }
    estimates = _leaf_estimates(statement.relations, leaves, statistics)
    tree = _build_join_tree(statement.relations, joins, leaves, estimates)
    columns = _resolve_projection(statement, schema)
    order_by = tuple(
        (*_resolve(key.column, statement, schema), key.ascending)
        for key in statement.order_by
    )
    return ProjectNode(
        child=tree,
        columns=tuple(columns),
        order_by=order_by,
        limit=statement.limit,
    )


def _leaf_estimates(
    relations: tuple[str, ...],
    leaves: dict[str, LeafSelection],
    statistics: "dict[str, object] | None",
) -> dict[str, float]:
    """Estimated output rows per leaf; FROM order as tiebreak when absent."""
    if not statistics:
        # Monotone pseudo-estimates preserve the FROM-clause order.
        return {name: float(index) for index, name in enumerate(relations)}
    estimates: dict[str, float] = {}
    for index, name in enumerate(relations):
        table_stats = statistics.get(name)
        if table_stats is None:
            estimates[name] = float(10**12 + index)
            continue
        estimates[name] = table_stats.estimate_leaf(  # type: ignore[attr-defined]
            leaves[name].all_predicates()
        )
    return estimates


# ----------------------------------------------------------------------
# Column resolution
# ----------------------------------------------------------------------


def _resolve(
    column: ColumnRef, statement: SelectStatement, schema: GlobalSchema
) -> tuple[str, str]:
    """Qualify a column reference against the FROM clause."""
    if column.relation is not None:
        if column.relation not in statement.relations:
            raise PlanningError(
                f"column {column} references relation {column.relation!r} "
                "not in FROM"
            )
        relation = schema.relation(column.relation)
        relation.attribute(column.name)  # existence check
        return (column.relation, column.name)
    candidates = [
        name
        for name in statement.relations
        if schema.relation(name).has_attribute(column.name)
    ]
    if not candidates:
        raise PlanningError(f"no relation in FROM declares column {column.name!r}")
    if len(candidates) > 1:
        raise PlanningError(
            f"ambiguous column {column.name!r}: declared by {candidates}"
        )
    return (candidates[0], column.name)


def _resolve_projection(
    statement: SelectStatement, schema: GlobalSchema
) -> list[tuple[str, str]]:
    if statement.is_star:
        return [
            (name, attr.name)
            for name in statement.relations
            for attr in schema.relation(name).attributes
        ]
    return [_resolve(c, statement, schema) for c in statement.columns]


# ----------------------------------------------------------------------
# Leaf construction: merge comparisons into predicates
# ----------------------------------------------------------------------


def _literal_code(value: object, attr_type: AttrType) -> object:
    """Encode a literal the way the attribute stores values."""
    if attr_type is AttrType.DATE and isinstance(value, _dt.date):
        return Domain.date_to_code(value)
    return value


def _build_leaf(
    relation_name: str,
    schema: RelationSchema,
    comparisons: list[Comparison],
    resolved_columns: list[tuple[str, str]],
) -> LeafSelection:
    by_attr: dict[str, list[Comparison]] = defaultdict(list)
    for (rel, attr), comparison in zip(resolved_columns, comparisons):
        assert rel == relation_name
        by_attr[attr].append(comparison)

    predicates: list[Predicate] = []
    for attr_name, comps in by_attr.items():
        attr = schema.attribute(attr_name)
        if attr.type.orderable:
            predicates.append(
                _merge_orderable(relation_name, attr_name, attr.type, comps, schema)
            )
        else:
            predicates.append(
                _merge_string(relation_name, attr_name, comps)
            )

    range_preds = [p for p in predicates if isinstance(p, RangePredicate)]
    if len(range_preds) > 1:
        # Paper restriction: "the selects on a relation can be only on one
        # attribute at a time".  The multi-attribute extension lives in
        # repro.core.multiattr; the base planner enforces the paper's rule.
        raise UnsupportedQueryError(
            f"relation {relation_name!r} has range selections on "
            f"{[p.attribute for p in range_preds]}; the paper's class allows one"
        )

    primary: Predicate | None
    residual: list[Predicate]
    if range_preds:
        primary = range_preds[0]
        residual = [p for p in predicates if p is not primary]
    elif predicates:
        primary = predicates[0]
        residual = list(predicates[1:])
    else:
        primary = None
        residual = []
    return LeafSelection(
        relation=relation_name, primary=primary, residual=tuple(residual)
    )


def _merge_orderable(
    relation: str,
    attribute: str,
    attr_type: AttrType,
    comparisons: list[Comparison],
    schema: RelationSchema,
) -> RangePredicate:
    attr = schema.attribute(attribute)
    assert attr.domain is not None
    low, high = attr.domain.low, attr.domain.high
    for comparison in comparisons:
        raw = _literal_code(comparison.literal.value, attr_type)
        if not isinstance(raw, int) or isinstance(raw, bool):
            raise PlanningError(
                f"literal {comparison.literal.value!r} is not comparable with "
                f"{relation}.{attribute}"
            )
        if comparison.op == "=":
            low, high = max(low, raw), min(high, raw)
        elif comparison.op == "<":
            high = min(high, raw - 1)
        elif comparison.op == "<=":
            high = min(high, raw)
        elif comparison.op == ">":
            low = max(low, raw + 1)
        elif comparison.op == ">=":
            low = max(low, raw)
    if low > high:
        raise PlanningError(
            f"contradictory selection on {relation}.{attribute}"
        )
    return RangePredicate(relation, attribute, IntRange(low, high)).validate_against(
        schema
    )


def _merge_string(
    relation: str, attribute: str, comparisons: list[Comparison]
) -> EqualityPredicate:
    values = set()
    for comparison in comparisons:
        if comparison.op != "=":
            raise UnsupportedQueryError(
                "only equality is supported on string attribute "
                f"{relation}.{attribute}"
            )
        values.add(comparison.literal.value)
    if len(values) > 1:
        raise PlanningError(
            f"contradictory equality selection on {relation}.{attribute}"
        )
    return EqualityPredicate(relation, attribute, values.pop())


# ----------------------------------------------------------------------
# Join tree
# ----------------------------------------------------------------------


def _build_join_tree(
    relations: tuple[str, ...],
    joins: list[tuple[tuple[str, str], tuple[str, str]]],
    leaves: dict[str, LeafSelection],
    estimates: dict[str, float],
) -> PlanNode:
    if len(relations) == 1:
        return leaves[relations[0]]

    start = min(relations, key=lambda name: (estimates[name], name))
    remaining = list(joins)
    joined: set[str] = {start}
    tree: PlanNode = leaves[start]
    redundant: list[tuple[tuple[str, str], tuple[str, str]]] = []
    while len(joined) < len(relations):
        # Candidate edges connect the joined set to one new relation;
        # edges inside the joined set are join cycles (post-join filters).
        candidates: list[
            tuple[str, tuple[tuple[str, str], tuple[str, str]], bool]
        ] = []
        for edge in list(remaining):
            (left_rel, _), (right_rel, _) = edge
            if left_rel in joined and right_rel in joined:
                redundant.append(edge)
                remaining.remove(edge)
            elif left_rel in joined and right_rel not in joined:
                candidates.append((right_rel, edge, False))
            elif right_rel in joined and left_rel not in joined:
                candidates.append((left_rel, edge, True))
        if not candidates:
            missing = set(relations) - joined
            raise PlanningError(
                f"join graph is disconnected; no condition links {missing}"
            )
        new_rel, edge, flipped = min(
            candidates, key=lambda c: (estimates[c[0]], c[0])
        )
        if flipped:
            tree = JoinNode(tree, leaves[new_rel], edge[1], edge[0])
        else:
            tree = JoinNode(tree, leaves[new_rel], edge[0], edge[1])
        joined.add(new_rel)
        remaining.remove(edge)
    redundant.extend(remaining)
    for left_col, right_col in redundant:
        tree = ColumnEqualsFilter(tree, left_col, right_col)
    return tree
