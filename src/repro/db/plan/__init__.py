"""Query planning and local execution.

The planner turns a parsed SELECT into the shape the paper's Figure 1
shows: selections pushed to the leaves (one :class:`LeafSelection` per
relation), a left-deep tree of equi-joins above them, and a projection at
the root.  The executor then evaluates that plan *locally at the querying
peer*, fetching each leaf's tuples through a pluggable
:class:`PartitionProvider` — either the base relations (source access) or
the P2P partition cache.
"""

from repro.db.plan.executor import (
    ExecutionStats,
    FetchResult,
    PartitionProvider,
    QueryResultSet,
    SourceProvider,
    execute_plan,
)
from repro.db.plan.nodes import JoinNode, LeafSelection, PlanNode, ProjectNode
from repro.db.plan.planner import plan_select

__all__ = [
    "PlanNode",
    "LeafSelection",
    "JoinNode",
    "ProjectNode",
    "plan_select",
    "execute_plan",
    "PartitionProvider",
    "SourceProvider",
    "FetchResult",
    "ExecutionStats",
    "QueryResultSet",
]
