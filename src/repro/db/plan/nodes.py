"""Logical plan nodes."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.predicates import Predicate, RangePredicate

__all__ = ["PlanNode", "LeafSelection", "JoinNode", "ProjectNode"]


@dataclass(frozen=True)
class PlanNode:
    """Base class for plan nodes (a plan is an immutable tree)."""

    def pretty(self, indent: int = 0) -> str:
        """Multi-line rendering of the subtree."""
        raise NotImplementedError


@dataclass(frozen=True)
class LeafSelection(PlanNode):
    """A pushed-down selection over one relation.

    ``primary`` is the predicate the P2P layer uses to *locate* the
    partition (the range it hashes, or the equality key); ``residual``
    predicates are applied locally after the tuples arrive.  ``primary`` is
    ``None`` for a bare scan.
    """

    relation: str
    primary: Predicate | None
    residual: tuple[Predicate, ...] = field(default_factory=tuple)

    def all_predicates(self) -> list[Predicate]:
        """Primary + residual predicates."""
        preds: list[Predicate] = []
        if self.primary is not None:
            preds.append(self.primary)
        preds.extend(self.residual)
        return preds

    @property
    def hashable_range(self) -> RangePredicate | None:
        """The range the LSH scheme hashes, when the primary is a range."""
        return self.primary if isinstance(self.primary, RangePredicate) else None

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        parts = [p.describe() for p in self.all_predicates()] or ["true"]
        return f"{pad}Select[{self.relation}: {' AND '.join(parts)}]"


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """Equi-join of two subtrees on qualified columns."""

    left: PlanNode
    right: PlanNode
    left_column: tuple[str, str]
    right_column: tuple[str, str]

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lc = ".".join(self.left_column)
        rc = ".".join(self.right_column)
        return (
            f"{pad}Join[{lc} = {rc}]\n"
            f"{self.left.pretty(indent + 1)}\n"
            f"{self.right.pretty(indent + 1)}"
        )


@dataclass(frozen=True)
class ColumnEqualsFilter(PlanNode):
    """Post-join filter enforcing equality between two already-bound columns.

    Produced for *redundant* join conditions — a WHERE edge between two
    relations that an earlier condition already connected (a join cycle).
    """

    child: PlanNode
    left_column: tuple[str, str]
    right_column: tuple[str, str]

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lc = ".".join(self.left_column)
        rc = ".".join(self.right_column)
        return f"{pad}Filter[{lc} = {rc}]\n{self.child.pretty(indent + 1)}"


@dataclass(frozen=True)
class ProjectNode(PlanNode):
    """Projection (plus optional ordering and limit) at the plan root.

    ``order_by`` keys are ``(relation, attribute, ascending)`` triples,
    resolved against the join output *before* projection, so ordering by a
    non-projected column works.
    """

    child: PlanNode
    columns: tuple[tuple[str, str], ...]
    order_by: tuple[tuple[str, str, bool], ...] = ()
    limit: "int | None" = None

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        cols = ", ".join(".".join(c) for c in self.columns)
        extras = ""
        if self.order_by:
            keys = ", ".join(
                f"{rel}.{attr} {'ASC' if asc else 'DESC'}"
                for rel, attr, asc in self.order_by
            )
            extras += f" ORDER BY {keys}"
        if self.limit is not None:
            extras += f" LIMIT {self.limit}"
        return f"{pad}Project[{cols}{extras}]\n{self.child.pretty(indent + 1)}"
