"""The catalog: global schema plus the base relations at source peers.

Sources "are part of the peer-to-peer system ... and are known to all the
peers", but "access to the base relations may in general be undesirable due
to load and connectivity reasons" (Section 2) — which is why the system
counts every source access it is forced to make.

:func:`medical_schema` reproduces the paper's running example schema
(Patient / Diagnosis / Physician / Prescription), and
:func:`medical_catalog` populates it with synthetic data so the example
programs can run the paper's Glaucoma query end to end.
"""

from __future__ import annotations

import datetime as _dt

import numpy as np

from repro.db.predicates import Predicate
from repro.db.relation import Relation
from repro.db.schema import Attribute, AttrType, GlobalSchema, RelationSchema
from repro.errors import SchemaError
from repro.ranges.domain import Domain

__all__ = ["Catalog", "medical_schema", "medical_catalog"]


class Catalog:
    """Global schema plus materialized base relations."""

    def __init__(self, schema: GlobalSchema) -> None:
        self.schema = schema
        self._relations: dict[str, Relation] = {
            rs.name: Relation(rs) for rs in schema.relations
        }
        #: Number of times a query had to fall back to a base relation.
        self.source_accesses = 0

    def relation(self, name: str) -> Relation:
        """The base relation called ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no base relation {name!r}") from None

    def fetch_from_source(self, predicate: Predicate) -> list[tuple[object, ...]]:
        """Evaluate a selection against the base relation, counting the
        access (the cost the P2P cache exists to avoid)."""
        self.source_accesses += 1
        relation = self.relation(predicate.relation)
        return relation.select(predicate)

    @property
    def relation_names(self) -> list[str]:
        """Names of all base relations."""
        return sorted(self._relations)

    def analyze(self, n_buckets: int = 32) -> "dict[str, object]":
        """Build per-relation statistics (histograms + value counts).

        Returns a mapping suitable for
        :func:`repro.db.plan.planner.plan_select`'s ``statistics`` argument.
        """
        from repro.db.stats import analyze

        return {
            name: analyze(relation, relation.schema, n_buckets=n_buckets)
            for name, relation in self._relations.items()
        }


# ----------------------------------------------------------------------
# The paper's running example (Section 2)
# ----------------------------------------------------------------------

DIAGNOSES = (
    "Glaucoma",
    "Diabetes",
    "Hypertension",
    "Asthma",
    "Migraine",
    "Arthritis",
    "Anemia",
    "Bronchitis",
)

SPECIALIZATIONS = (
    "Ophthalmology",
    "Cardiology",
    "Endocrinology",
    "Neurology",
    "General",
)

PRESCRIPTION_TEXTS = (
    "timolol drops",
    "latanoprost drops",
    "metformin 500mg",
    "lisinopril 10mg",
    "albuterol inhaler",
    "sumatriptan 50mg",
    "ibuprofen 400mg",
    "ferrous sulfate",
)

_DATE_LOW = _dt.date(1995, 1, 1)
_DATE_HIGH = _dt.date(2003, 12, 31)


def medical_schema() -> GlobalSchema:
    """The paper's global schema, with explicit attribute domains."""
    age = Domain("age", 0, 120)
    patient_id = Domain("patient_id", 0, 10**6)
    physician_id = Domain("physician_id", 0, 10**5)
    prescription_id = Domain("prescription_id", 0, 10**6)
    date = Domain.for_dates("date", _DATE_LOW, _DATE_HIGH)
    return GlobalSchema(
        relations=(
            RelationSchema(
                "Patient",
                (
                    Attribute("patient_id", AttrType.INT, patient_id),
                    Attribute("name", AttrType.STRING),
                    Attribute("age", AttrType.INT, age),
                ),
            ),
            RelationSchema(
                "Diagnosis",
                (
                    Attribute("patient_id", AttrType.INT, patient_id),
                    Attribute("diagnosis", AttrType.STRING),
                    Attribute("physician_id", AttrType.INT, physician_id),
                    Attribute("prescription_id", AttrType.INT, prescription_id),
                ),
            ),
            RelationSchema(
                "Physician",
                (
                    Attribute("physician_id", AttrType.INT, physician_id),
                    Attribute("name", AttrType.STRING),
                    Attribute("age", AttrType.INT, age),
                    Attribute("specialization", AttrType.STRING),
                ),
            ),
            RelationSchema(
                "Prescription",
                (
                    Attribute("prescription_id", AttrType.INT, prescription_id),
                    Attribute("date", AttrType.DATE, date),
                    Attribute("prescription", AttrType.STRING),
                    Attribute("comments", AttrType.STRING),
                ),
            ),
        )
    )


def medical_catalog(
    n_patients: int = 2000,
    n_physicians: int = 50,
    rng: np.random.Generator | None = None,
) -> Catalog:
    """A populated medical catalog with one diagnosis+prescription per patient.

    Synthetic but referentially consistent: every ``Diagnosis.patient_id``
    exists in ``Patient`` and every ``Diagnosis.prescription_id`` exists in
    ``Prescription``, so the paper's three-way join returns real answers.
    """
    if rng is None:
        rng = np.random.default_rng(2003)
    catalog = Catalog(medical_schema())

    patients = catalog.relation("Patient")
    for pid in range(n_patients):
        patients.insert(
            {
                "patient_id": pid,
                "name": f"patient-{pid}",
                "age": int(rng.integers(0, 100)),
            }
        )

    physicians = catalog.relation("Physician")
    for doc in range(n_physicians):
        physicians.insert(
            {
                "physician_id": doc,
                "name": f"dr-{doc}",
                "age": int(rng.integers(28, 75)),
                "specialization": SPECIALIZATIONS[
                    int(rng.integers(len(SPECIALIZATIONS)))
                ],
            }
        )

    diagnoses = catalog.relation("Diagnosis")
    prescriptions = catalog.relation("Prescription")
    date_span = (_DATE_HIGH - _DATE_LOW).days
    for pid in range(n_patients):
        disease_index = int(rng.integers(len(DIAGNOSES)))
        diagnoses.insert(
            {
                "patient_id": pid,
                "diagnosis": DIAGNOSES[disease_index],
                "physician_id": int(rng.integers(n_physicians)),
                "prescription_id": pid,
            }
        )
        prescriptions.insert(
            {
                "prescription_id": pid,
                "date": _DATE_LOW + _dt.timedelta(days=int(rng.integers(date_span))),
                "prescription": PRESCRIPTION_TEXTS[disease_index],
                "comments": "",
            }
        )
    return catalog
