"""Selection predicates over one relation's attributes.

The paper restricts selections to one attribute at a time (Section 2);
:class:`RangePredicate` is that restricted form, and it is the unit the LSH
scheme hashes.  Equality on unorderable (string) attributes is an
:class:`EqualityPredicate`, which the system resolves with an exact-match
DHT key instead (Section 3.1's simpler problem).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.db.schema import RelationSchema
from repro.errors import SchemaError
from repro.ranges.interval import IntRange

__all__ = ["Predicate", "RangePredicate", "EqualityPredicate", "TruePredicate"]


class Predicate(ABC):
    """A boolean condition over a single relation's rows."""

    relation: str

    @abstractmethod
    def matches(self, row: tuple[object, ...], schema: RelationSchema) -> bool:
        """Whether a stored row satisfies the predicate."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable rendering for reports and plan pretty-printing."""


@dataclass(frozen=True)
class RangePredicate(Predicate):
    """``low <= attr <= high`` over an orderable attribute."""

    relation: str
    attribute: str
    range: IntRange

    def matches(self, row: tuple[object, ...], schema: RelationSchema) -> bool:
        value = row[schema.position(self.attribute)]
        assert isinstance(value, int)
        return value in self.range

    def describe(self) -> str:
        return f"{self.range.start} <= {self.relation}.{self.attribute} <= {self.range.end}"

    def validate_against(self, schema: RelationSchema) -> "RangePredicate":
        """Check the attribute exists, is orderable, and the range fits."""
        attr = schema.attribute(self.attribute)
        if not attr.type.orderable:
            raise SchemaError(
                "range selection on non-orderable attribute "
                f"{self.relation}.{self.attribute}"
            )
        assert attr.domain is not None
        attr.domain.validate_range(self.range)
        return self

    def widen(self, fraction: float, schema: RelationSchema) -> "RangePredicate":
        """The padded predicate (Section 5.2), clamped to the domain."""
        attr = schema.attribute(self.attribute)
        assert attr.domain is not None
        padded = self.range.pad(
            fraction, lower_bound=attr.domain.low, upper_bound=attr.domain.high
        )
        return RangePredicate(self.relation, self.attribute, padded)


@dataclass(frozen=True)
class EqualityPredicate(Predicate):
    """``attr = value``; the only form allowed on string attributes."""

    relation: str
    attribute: str
    value: object

    def matches(self, row: tuple[object, ...], schema: RelationSchema) -> bool:
        return row[schema.position(self.attribute)] == self.value

    def describe(self) -> str:
        return f"{self.relation}.{self.attribute} = {self.value!r}"

    def validate_against(self, schema: RelationSchema) -> "EqualityPredicate":
        """Check the attribute exists and the value encodes under its type."""
        attr = schema.attribute(self.attribute)
        encoded = attr.encode(self.value)
        if encoded != self.value:
            # Normalize (e.g. a date literal) to its stored representation.
            return EqualityPredicate(self.relation, self.attribute, encoded)
        return self

    def as_point_range(self, schema: RelationSchema) -> "RangePredicate | None":
        """Equality on an orderable attribute as the point range ``[v, v]``.

        Section 3.1's ``age = 30`` example: a point selection is just a
        width-one range, so it can flow through the same LSH machinery.
        """
        attr = schema.attribute(self.attribute)
        if not attr.type.orderable:
            return None
        encoded = attr.encode(self.value)
        assert isinstance(encoded, int)
        return RangePredicate(
            self.relation, self.attribute, IntRange(encoded, encoded)
        )


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The always-true predicate: a full relation scan."""

    relation: str

    def matches(self, row: tuple[object, ...], schema: RelationSchema) -> bool:
        return True

    def describe(self) -> str:
        return f"{self.relation}: true"
