"""In-memory relations: the base tables held by source peers."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.db.predicates import Predicate
from repro.db.schema import RelationSchema
from repro.errors import SchemaError
from repro.ranges.interval import IntRange

__all__ = ["Relation"]


class Relation:
    """A schema plus stored rows.

    Rows are stored as tuples in attribute order with values already encoded
    (dates as day codes), so selections are plain comparisons.
    """

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self._rows: list[tuple[object, ...]] = []

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, values: dict[str, object]) -> None:
        """Insert one row given as an attribute dict (validated)."""
        self._rows.append(self.schema.encode_row(values))

    def insert_many(self, rows: Iterable[dict[str, object]]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def insert_encoded(self, row: tuple[object, ...]) -> None:
        """Insert an already-encoded row tuple (trusted internal path)."""
        if len(row) != len(self.schema.attributes):
            raise SchemaError(
                f"row arity {len(row)} != schema arity "
                f"{len(self.schema.attributes)} for {self.schema.name!r}"
            )
        self._rows.append(tuple(row))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def scan(self) -> Iterator[tuple[object, ...]]:
        """All stored rows, in insertion order."""
        return iter(self._rows)

    def select(self, predicate: Predicate) -> list[tuple[object, ...]]:
        """Rows satisfying ``predicate``."""
        if predicate.relation != self.schema.name:
            raise SchemaError(
                f"predicate on {predicate.relation!r} applied to "
                f"{self.schema.name!r}"
            )
        return [row for row in self._rows if predicate.matches(row, self.schema)]

    def select_range(self, attribute: str, r: IntRange) -> list[tuple[object, ...]]:
        """Rows whose (encoded) ``attribute`` value lies in ``r``."""
        pos = self.schema.position(attribute)
        return [row for row in self._rows if row[pos] in r]  # type: ignore[operator]

    def project(self, attributes: list[str]) -> list[tuple[object, ...]]:
        """The given columns of every row (no dedup: bag semantics)."""
        positions = [self.schema.position(a) for a in attributes]
        return [tuple(row[p] for p in positions) for row in self._rows]

    def decoded_rows(self) -> list[dict[str, object]]:
        """All rows as user-facing dicts."""
        return [self.schema.decode_row(row) for row in self._rows]
