"""Table statistics: equi-width histograms and selectivity estimation.

The stats the paper's future work gestures at ("planning a query ... based
on available statistics") start with classic single-relation statistics.
``analyze`` builds an :class:`EquiWidthHistogram` per orderable attribute
and value counts per string attribute; the planner uses the estimates to
order joins smallest-build-side first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.predicates import (
    EqualityPredicate,
    Predicate,
    RangePredicate,
    TruePredicate,
)
from repro.db.relation import Relation
from repro.db.schema import RelationSchema
from repro.errors import SchemaError
from repro.ranges.interval import IntRange

__all__ = ["EquiWidthHistogram", "TableStatistics", "analyze"]


@dataclass(frozen=True)
class EquiWidthHistogram:
    """Counts of values in equal-width buckets over ``[low, high]``.

    Estimation assumes uniformity within a bucket — the textbook model.
    """

    low: int
    high: int
    counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise SchemaError("histogram bounds inverted")
        if not self.counts:
            raise SchemaError("histogram needs at least one bucket")

    @classmethod
    def build(
        cls, values: list[int], low: int, high: int, n_buckets: int = 32
    ) -> "EquiWidthHistogram":
        """Histogram the values over [low, high]."""
        if n_buckets <= 0:
            raise SchemaError("need at least one bucket")
        counts = [0] * n_buckets
        span = high - low + 1
        for value in values:
            if not low <= value <= high:
                raise SchemaError(f"value {value} outside histogram bounds")
            index = min((value - low) * n_buckets // span, n_buckets - 1)
            counts[index] += 1
        return cls(low=low, high=high, counts=tuple(counts))

    @property
    def total(self) -> int:
        """Number of values histogrammed."""
        return sum(self.counts)

    def _bucket_bounds(self, index: int) -> tuple[int, int]:
        span = self.high - self.low + 1
        n = len(self.counts)
        lo = self.low + index * span // n
        hi = self.low + (index + 1) * span // n - 1
        if index == n - 1:
            hi = self.high
        return lo, hi

    def estimate_range(self, r: IntRange) -> float:
        """Estimated rows with value in ``r`` (uniform within buckets)."""
        estimate = 0.0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            lo, hi = self._bucket_bounds(index)
            bucket = IntRange(lo, hi)
            overlap = bucket.intersection_size(r)
            if overlap:
                estimate += count * overlap / len(bucket)
        return estimate

    def estimate_point(self, value: int) -> float:
        """Estimated rows with exactly this value."""
        if not self.low <= value <= self.high:
            return 0.0
        return self.estimate_range(IntRange(value, value))


@dataclass
class TableStatistics:
    """Statistics for one relation."""

    row_count: int
    histograms: dict[str, EquiWidthHistogram] = field(default_factory=dict)
    string_counts: dict[str, dict[str, int]] = field(default_factory=dict)

    def estimate_predicate(self, predicate: Predicate) -> float:
        """Estimated rows satisfying one predicate."""
        if isinstance(predicate, TruePredicate):
            return float(self.row_count)
        if isinstance(predicate, RangePredicate):
            histogram = self.histograms.get(predicate.attribute)
            if histogram is None:
                return float(self.row_count)
            return histogram.estimate_range(predicate.range)
        if isinstance(predicate, EqualityPredicate):
            counts = self.string_counts.get(predicate.attribute)
            if counts is not None:
                return float(counts.get(predicate.value, 0))  # type: ignore[arg-type]
            histogram = self.histograms.get(predicate.attribute)
            if histogram is not None and isinstance(predicate.value, int):
                return histogram.estimate_point(predicate.value)
            return float(self.row_count)
        return float(self.row_count)

    def estimate_leaf(self, predicates: list[Predicate]) -> float:
        """Estimate a conjunction by independence of selectivities."""
        estimate = float(self.row_count)
        if self.row_count == 0:
            return 0.0
        for predicate in predicates:
            selectivity = self.estimate_predicate(predicate) / self.row_count
            estimate *= selectivity
        return estimate


def analyze(
    relation: Relation, schema: RelationSchema, n_buckets: int = 32
) -> TableStatistics:
    """Build statistics for one relation (the ANALYZE of this substrate)."""
    stats = TableStatistics(row_count=len(relation))
    for position, attr in enumerate(schema.attributes):
        column = [row[position] for row in relation.scan()]
        if attr.type.orderable:
            assert attr.domain is not None
            stats.histograms[attr.name] = EquiWidthHistogram.build(
                [v for v in column if isinstance(v, int)],
                low=attr.domain.low,
                high=attr.domain.high,
                n_buckets=n_buckets,
            )
        else:
            counts: dict[str, int] = {}
            for value in column:
                assert isinstance(value, str)
                counts[value] = counts.get(value, 0) + 1
            stats.string_counts[attr.name] = counts
    return stats
