"""Typed relation schemas and the shared global schema.

"We assume a global schema that is known to all the peers in the system"
(Section 2).  Schemas carry per-attribute *domains* for the range-hashable
types (ints and dates), because the LSH scheme needs a bounded, totally
ordered code space.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.ranges.domain import Domain

__all__ = ["AttrType", "Attribute", "RelationSchema", "GlobalSchema"]


class AttrType(enum.Enum):
    """Attribute types the substrate supports."""

    INT = "int"
    STRING = "string"
    DATE = "date"

    @property
    def orderable(self) -> bool:
        """Whether range selections over the type are meaningful."""
        return self in (AttrType.INT, AttrType.DATE)


@dataclass(frozen=True)
class Attribute:
    """One column: name, type, and (for orderable types) a value domain."""

    name: str
    type: AttrType
    domain: Domain | None = None

    def __post_init__(self) -> None:
        if self.type.orderable and self.domain is None:
            raise SchemaError(
                f"orderable attribute {self.name!r} needs a domain"
            )
        if not self.type.orderable and self.domain is not None:
            raise SchemaError(
                f"attribute {self.name!r} of type {self.type.value} "
                "cannot carry a domain"
            )

    def encode(self, value: object) -> object:
        """Validate ``value`` and convert it to its stored representation.

        Dates are stored as integer day codes so the same range machinery
        serves ``age`` and ``date`` selections alike.
        """
        if self.type is AttrType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"{self.name}: expected int, got {value!r}")
            assert self.domain is not None
            return self.domain.validate(value)
        if self.type is AttrType.DATE:
            if isinstance(value, _dt.date):
                code = Domain.date_to_code(value)
            elif isinstance(value, int) and not isinstance(value, bool):
                code = value
            else:
                raise SchemaError(f"{self.name}: expected date, got {value!r}")
            assert self.domain is not None
            return self.domain.validate(code)
        if not isinstance(value, str):
            raise SchemaError(f"{self.name}: expected str, got {value!r}")
        return value

    def decode(self, stored: object) -> object:
        """Convert the stored representation back to the user-facing value."""
        if self.type is AttrType.DATE:
            assert isinstance(stored, int)
            return Domain.code_to_date(stored)
        return stored


@dataclass(frozen=True)
class RelationSchema:
    """An ordered list of attributes under a relation name."""

    name: str
    attributes: tuple[Attribute, ...]
    _index: dict[str, int] = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.attributes:
            raise SchemaError(f"relation {self.name!r} has no attributes")
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"relation {self.name!r} has duplicate attributes")
        self._index.update({a.name: i for i, a in enumerate(self.attributes)})

    def attribute(self, name: str) -> Attribute:
        """The attribute called ``name``."""
        try:
            return self.attributes[self._index[name]]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {name!r}"
            ) from None

    def position(self, name: str) -> int:
        """Column index of attribute ``name``."""
        if name not in self._index:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {name!r}"
            )
        return self._index[name]

    def has_attribute(self, name: str) -> bool:
        """Whether the relation declares ``name``."""
        return name in self._index

    def encode_row(self, values: dict[str, object]) -> tuple[object, ...]:
        """Validate and order a dict of values into a stored row tuple."""
        unknown = set(values) - set(self._index)
        if unknown:
            raise SchemaError(f"unknown attributes for {self.name!r}: {unknown}")
        missing = set(self._index) - set(values)
        if missing:
            raise SchemaError(f"missing attributes for {self.name!r}: {missing}")
        return tuple(a.encode(values[a.name]) for a in self.attributes)

    def decode_row(self, row: tuple[object, ...]) -> dict[str, object]:
        """Stored row tuple back to a user-facing dict."""
        return {a.name: a.decode(v) for a, v in zip(self.attributes, row)}


@dataclass(frozen=True)
class GlobalSchema:
    """The schema every peer agrees on: a set of relation schemas."""

    relations: tuple[RelationSchema, ...]

    def __post_init__(self) -> None:
        names = [r.name for r in self.relations]
        if len(set(names)) != len(names):
            raise SchemaError("global schema has duplicate relation names")

    def relation(self, name: str) -> RelationSchema:
        """The schema of relation ``name``."""
        for schema in self.relations:
            if schema.name == name:
                return schema
        raise SchemaError(f"no relation {name!r} in the global schema")

    def has_relation(self, name: str) -> bool:
        """Whether the schema declares relation ``name``."""
        return any(r.name == name for r in self.relations)

    def relations_with_attribute(self, attr: str) -> list[RelationSchema]:
        """All relations declaring an attribute called ``attr`` (used to
        resolve unqualified column references in SQL)."""
        return [r for r in self.relations if r.has_attribute(attr)]
