"""Statistics-based query planning (the paper's Section 6 future work).

"The problem of planning a query in a peer-to-peer system based on
available statistics of the system is worth exploring."  The decision the
querying peer actually faces per selection leaf is: *pay l overlay lookups
to probe the cache* (worth it when similar partitions are usually there) or
*go straight to the source* (cheaper when the cache rarely helps).

:class:`LeafStatistics` tracks, per (relation, attribute), how often the
cache fully answered and what the probe cost; :class:`CostModel` turns that
into expected costs; :class:`AdaptiveRoutingProvider` makes the per-leaf
decision, falling back gracefully while statistics are cold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.p2pdb import CachePartitionProvider
from repro.core.system import RangeSelectionSystem
from repro.db.catalog import Catalog
from repro.db.plan.executor import FetchResult, PartitionProvider
from repro.db.plan.nodes import LeafSelection
from repro.errors import ConfigError

__all__ = [
    "LeafStatistics",
    "StatisticsRegistry",
    "CostModel",
    "AdaptiveRoutingProvider",
]


@dataclass
class LeafStatistics:
    """Outcome history for one (relation, attribute) selection stream."""

    probes: int = 0
    cache_answers: int = 0
    probe_hops: int = 0
    hit_rate_ewma: float | None = None
    _alpha: float = 0.2

    def record_probe(self, answered_from_cache: bool, hops: int) -> None:
        """Account one cache probe and its outcome."""
        self.probes += 1
        self.probe_hops += hops
        if answered_from_cache:
            self.cache_answers += 1
        sample = 1.0 if answered_from_cache else 0.0
        if self.hit_rate_ewma is None:
            self.hit_rate_ewma = sample
        else:
            self.hit_rate_ewma = (
                self._alpha * sample + (1 - self._alpha) * self.hit_rate_ewma
            )

    @property
    def mean_probe_hops(self) -> float:
        """Average overlay hops one cache probe has cost so far."""
        return self.probe_hops / self.probes if self.probes else 0.0

    @property
    def hit_rate(self) -> float:
        """Current cache-answer rate estimate (0.5 prior when cold)."""
        return self.hit_rate_ewma if self.hit_rate_ewma is not None else 0.5


class StatisticsRegistry:
    """Per-(relation, attribute) statistics, created on first use."""

    def __init__(self) -> None:
        self._stats: dict[tuple[str, str], LeafStatistics] = {}

    def for_leaf(self, relation: str, attribute: str) -> LeafStatistics:
        """The statistics bucket for one selection stream."""
        key = (relation, attribute)
        if key not in self._stats:
            self._stats[key] = LeafStatistics()
        return self._stats[key]

    def snapshot(self) -> dict[tuple[str, str], LeafStatistics]:
        """All tracked streams (shared references, read-only by convention)."""
        return dict(self._stats)


@dataclass(frozen=True)
class CostModel:
    """Abstract cost units for the probe-vs-source decision.

    ``hop_cost`` prices one overlay hop; ``source_cost`` prices one access
    to a base relation (the expensive, possibly overloaded resource the
    paper wants to protect — typically orders of magnitude above a hop).
    """

    hop_cost: float = 1.0
    source_cost: float = 50.0

    def __post_init__(self) -> None:
        if self.hop_cost < 0 or self.source_cost < 0:
            raise ConfigError("costs must be non-negative")

    def expected_probe_cost(self, stats: LeafStatistics, fallback_hops: float) -> float:
        """Expected cost of probing the cache first.

        Probe hops are always paid; with probability (1 - hit rate) the
        source access is paid on top.
        """
        hops = stats.mean_probe_hops if stats.probes else fallback_hops
        return hops * self.hop_cost + (1.0 - stats.hit_rate) * self.source_cost

    def source_cost_direct(self) -> float:
        """Cost of skipping the cache entirely."""
        return self.source_cost


class AdaptiveRoutingProvider(PartitionProvider):
    """Chooses cache-probe or source-direct per leaf from statistics.

    Exploration: every ``explore_every``-th decision probes the cache even
    when the model prefers the source.  Exploration must be frequent here
    because probing is also what *fills* the cache (store-on-miss): a
    planner that stops probing keeps the cache cold and can never learn
    that probing became worthwhile.
    """

    def __init__(
        self,
        catalog: Catalog,
        system: RangeSelectionSystem,
        cost_model: CostModel | None = None,
        explore_every: int = 3,
    ) -> None:
        if explore_every < 2:
            raise ConfigError("explore_every must be at least 2")
        self.catalog = catalog
        self.system = system
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.explore_every = explore_every
        self.statistics = StatisticsRegistry()
        self._cache_provider = CachePartitionProvider(
            catalog, system, fallback_to_source=True
        )
        self._decisions = 0
        #: Decision counts, for experiments: "probe" vs "direct".
        self.decision_counts: dict[str, int] = {"probe": 0, "direct": 0}

    # ------------------------------------------------------------------

    def _expected_probe_hops_fallback(self) -> float:
        """Prior for probe cost before any observation: l lookups of
        ~(1/2)log2(N) hops each."""
        import math

        n = max(2, len(self.system.router.node_ids))
        return self.system.scheme.l * (0.5 * math.log2(n) + 1.0)

    def fetch(self, leaf: LeafSelection) -> FetchResult:
        primary = leaf.primary
        if primary is None:
            # Bare scans have no cache path: always the source.
            self.catalog.source_accesses += 1
            rows = list(self.catalog.relation(leaf.relation).scan())
            return FetchResult(rows=rows, origin="source", coverage=1.0)

        stats = self.statistics.for_leaf(primary.relation, getattr(
            primary, "attribute", "*"
        ))
        self._decisions += 1
        exploring = self._decisions % self.explore_every == 0
        probe_cost = self.cost_model.expected_probe_cost(
            stats, self._expected_probe_hops_fallback()
        )
        prefer_probe = probe_cost <= self.cost_model.source_cost_direct()

        if prefer_probe or exploring:
            self.decision_counts["probe"] += 1
            result = self._cache_provider.fetch(leaf)
            stats.record_probe(
                answered_from_cache=result.origin == "cache",
                hops=result.overlay_hops,
            )
            return result

        self.decision_counts["direct"] += 1
        rows = self.catalog.fetch_from_source(primary)
        return FetchResult(rows=rows, origin="source-direct", coverage=1.0)

    # ------------------------------------------------------------------

    def total_cost(self) -> float:
        """Cost of everything fetched so far under the model."""
        hops = sum(
            stats.probe_hops for stats in self.statistics.snapshot().values()
        )
        return (
            hops * self.cost_model.hop_cost
            + self.catalog.source_accesses * self.cost_model.source_cost
        )
