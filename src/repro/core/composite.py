"""Composite answers: combine every located partition, report the gap.

Section 5.2: "the system can present the user the part of the answer it is
able to find fast, and can also let them know what selection ranges this
answer corresponds to.  If the user is not satisfied with the answer, they
have a choice to go to the source for the rest of the answer."

The base procedure uses only the single best reply.  A querying peer,
however, receives up to ``l`` candidate partitions — one per contacted
owner — and nothing stops it from using *all* of them: their union can
cover more of the query than any single candidate.  This module implements
that composition and computes exactly what the paper proposes to tell the
user: the covered ranges, the combined recall, and the residual ranges a
source visit would still have to fetch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import LocateResult, RangeSelectionSystem
from repro.db.partition import PartitionDescriptor
from repro.ranges.interval import IntRange
from repro.ranges.rangeset import RangeSet

__all__ = ["CompositeAnswer", "query_composite"]


@dataclass(frozen=True)
class CompositeAnswer:
    """The union of all located partitions, measured against the query."""

    query: IntRange
    parts: tuple[PartitionDescriptor, ...]
    covered: RangeSet
    residual: RangeSet
    recall: float
    best_single_recall: float
    overlay_hops: int
    peers_contacted: int

    @property
    def complete(self) -> bool:
        """Whether the composite fully answers the query."""
        return not self.residual

    @property
    def gain_over_best_single(self) -> float:
        """Extra recall obtained by composing instead of picking one."""
        return self.recall - self.best_single_recall

    def describe(self) -> str:
        """The user-facing message Section 5.2 sketches."""
        if self.complete:
            return f"query {self.query}: fully covered by {len(self.parts)} partition(s)"
        return (
            f"query {self.query}: covered {self.covered} "
            f"({self.recall:.0%}); missing {self.residual} — "
            "fetch the remainder from the source if needed"
        )


def compose_replies(query: IntRange, located: LocateResult) -> CompositeAnswer:
    """Build a composite answer from a locate result."""
    parts = tuple(
        reply.descriptor
        for reply in located.replies
        if reply.descriptor is not None
    )
    clipped = [
        part.range.intersect(query)
        for part in parts
        if part.range.intersect(query) is not None
    ]
    covered = RangeSet(clipped)
    residual = RangeSet((query,)).difference(covered)
    best_single = max(
        (part.containment_of(query) for part in parts), default=0.0
    )
    return CompositeAnswer(
        query=query,
        parts=parts,
        covered=covered,
        residual=residual,
        recall=covered.coverage_of(query),
        best_single_recall=best_single,
        overlay_hops=located.overlay_hops,
        peers_contacted=located.peers_contacted,
    )


def query_composite(
    system: RangeSelectionSystem,
    query: IntRange,
    relation: str = "R",
    attribute: str = "value",
    origin: int | None = None,
    padding: float | None = None,
) -> CompositeAnswer:
    """Run the locate step and compose *all* replies into one answer.

    Mirrors :meth:`RangeSelectionSystem.query` (including padding and
    store-on-miss) but measures the union of candidates instead of the
    single best one.
    """
    if origin is None:
        origin = system.pick_origin()
    effective_padding = (
        system.config.padding if padding is None else padding
    )
    hashed = query
    if effective_padding > 0:
        hashed = query.pad(
            effective_padding,
            lower_bound=system.config.domain.low,
            upper_bound=system.config.domain.high,
        )
    located = system.locate(hashed, relation, attribute, origin=origin)
    answer = compose_replies(query, located)
    exact = any(part.range == hashed for part in answer.parts)
    if not exact and system.config.store_on_miss:
        system.store_partition(
            hashed,
            relation,
            attribute,
            origin=origin,
            identifiers=list(located.identifiers),
            owners=list(located.owners),
        )
    return answer
