"""Dynamic query padding (the paper's Section 5.2 future work).

"In future, we will explore dynamically adjusting padding for better
overall performance."  This controller does exactly that: it tracks an
exponentially weighted moving average of observed recall and widens the
padding when queries come back too incomplete, narrowing it again once
recall is comfortably above target.
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["AdaptivePaddingController"]


class AdaptivePaddingController:
    """Additive-increase / multiplicative-decrease padding control.

    Use it around :meth:`RangeSelectionSystem.query`::

        controller = AdaptivePaddingController(target_recall=0.9)
        for r in workload:
            result = system.query(r, padding=controller.padding)
            controller.observe(result.recall)
    """

    def __init__(
        self,
        target_recall: float = 0.9,
        initial_padding: float = 0.0,
        step: float = 0.05,
        max_padding: float = 0.5,
        ewma_alpha: float = 0.05,
    ) -> None:
        if not 0.0 < target_recall <= 1.0:
            raise ConfigError("target_recall must be in (0, 1]")
        if not 0.0 <= initial_padding <= max_padding:
            raise ConfigError("initial_padding must be within [0, max_padding]")
        if step <= 0 or max_padding <= 0:
            raise ConfigError("step and max_padding must be positive")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigError("ewma_alpha must be in (0, 1]")
        self.target_recall = target_recall
        self.padding = initial_padding
        self.step = step
        self.max_padding = max_padding
        self.ewma_alpha = ewma_alpha
        self._recall_ewma: float | None = None
        self.observations = 0

    @property
    def recall_estimate(self) -> float | None:
        """Current EWMA of observed recall (None before any observation)."""
        return self._recall_ewma

    def observe(self, recall: float) -> float:
        """Record one query's recall and return the padding for the next.

        Below-target recall widens the padding additively; above-target
        recall shrinks it by half a step, so the controller settles just
        wide enough to keep the EWMA at the target.
        """
        if not 0.0 <= recall <= 1.0:
            raise ConfigError(f"recall {recall} outside [0, 1]")
        self.observations += 1
        if self._recall_ewma is None:
            self._recall_ewma = recall
        else:
            alpha = self.ewma_alpha
            self._recall_ewma = alpha * recall + (1 - alpha) * self._recall_ewma
        if self._recall_ewma < self.target_recall:
            self.padding = min(self.max_padding, self.padding + self.step)
        else:
            self.padding = max(0.0, self.padding - self.step / 2)
        return self.padding
