"""Overlay routers: one interface over Chord and CAN.

Section 3.1: "Any of the distributed hash tables (DHT), e.g., CAN [13] or
Chord [14], can be used for this purpose."  The range-selection system
only needs two operations from its DHT — *who owns this identifier* and
*route to the owner, counting hops* — so both overlays are wrapped behind
this small interface and selected by ``SystemConfig.overlay``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.can.network import CanOverlay
from repro.chord.ring import ChordRing
from repro.errors import ConfigError

__all__ = ["OverlayRouter", "ChordRouter", "CanRouter", "build_overlay"]


class OverlayRouter(ABC):
    """The DHT surface the system depends on."""

    @property
    @abstractmethod
    def node_ids(self) -> list[int]:
        """All peer ids, ascending."""

    @abstractmethod
    def owner_of(self, key: int) -> int:
        """Peer id responsible for a bucket identifier."""

    #: Per-hop routing callback: ``(from_id, to_id, via)`` where ``via``
    #: names the routing edge (Chord: ``finger[i]``/``successor``; CAN:
    #: ``greedy``).  The tracing layer passes one to see lookups hop by hop.
    HopRecorder = Callable[[int, int, str], None]

    @abstractmethod
    def route(
        self,
        key: int,
        start_id: int,
        recorder: "OverlayRouter.HopRecorder | None" = None,
    ) -> tuple[int, ...]:
        """Route ``key`` from ``start_id``; return the node-id path
        traversed.  The first element is ``start_id`` itself and the last
        is the owner, so the path has ``hops + 1`` entries (a start node
        that already owns the key yields a one-element path).  When given,
        ``recorder`` is invoked once per traversed edge."""

    def lookup(self, key: int, start_id: int) -> tuple[int, int]:
        """Route ``key`` from ``start_id``; return (owner id, hops)."""
        path = self.route(key, start_id)
        return (path[-1], len(path) - 1)

    def replica_set(
        self,
        key: int,
        count: int,
        predicate: "Callable[[int], bool] | None" = None,
    ) -> list[int]:
        """The peers a ``count``-way replicated ``key`` is placed on, the
        owner first.  Overlays without a successor structure (CAN) know
        only the owner, so the base implementation returns it alone."""
        owner = self.owner_of(key)
        if predicate is not None and not predicate(owner):
            return []
        return [owner]


class ChordRouter(OverlayRouter):
    """Chord: successor ownership, finger-table routing, O(log N) hops."""

    def __init__(self, ring: ChordRing) -> None:
        self.ring = ring

    @classmethod
    def build(
        cls, n_peers: int, m: int = 32, successor_list_size: int = 4
    ) -> "ChordRouter":
        ring = ChordRing(m=m, successor_list_size=successor_list_size)
        ring.add_nodes(n_peers)
        ring.build()
        return cls(ring)

    @property
    def node_ids(self) -> list[int]:
        return self.ring.node_ids

    def owner_of(self, key: int) -> int:
        return self.ring.successor_of(key)

    def route(
        self,
        key: int,
        start_id: int,
        recorder: "OverlayRouter.HopRecorder | None" = None,
    ) -> tuple[int, ...]:
        return self.ring.lookup(key, start_id=start_id, recorder=recorder).path

    def lookup(self, key: int, start_id: int) -> tuple[int, int]:
        result = self.ring.lookup(key, start_id=start_id)
        return (result.owner_id, result.hops)

    def replica_set(
        self,
        key: int,
        count: int,
        predicate: "Callable[[int], bool] | None" = None,
    ) -> list[int]:
        return self.ring.successor_chain(key, count, predicate)


class CanRouter(OverlayRouter):
    """CAN: zone ownership, greedy coordinate routing, O(d·N^(1/d)) hops."""

    def __init__(self, overlay: CanOverlay) -> None:
        self.overlay = overlay

    @classmethod
    def build(cls, n_peers: int, dimensions: int = 2, seed: int = 0) -> "CanRouter":
        overlay = CanOverlay(dimensions=dimensions)
        overlay.build(n_peers, seed=seed)
        return cls(overlay)

    @property
    def node_ids(self) -> list[int]:
        return self.overlay.node_ids

    def owner_of(self, key: int) -> int:
        return self.overlay.owner_of(key)

    def route(
        self,
        key: int,
        start_id: int,
        recorder: "OverlayRouter.HopRecorder | None" = None,
    ) -> tuple[int, ...]:
        path = self.overlay.lookup_path(key, start_id=start_id)
        if recorder is not None:
            for hop_from, hop_to in zip(path, path[1:]):
                recorder(hop_from, hop_to, "greedy")
        return path

    def lookup(self, key: int, start_id: int) -> tuple[int, int]:
        return self.overlay.lookup(key, start_id=start_id)


def build_overlay(
    kind: str,
    n_peers: int,
    id_bits: int = 32,
    dimensions: int = 2,
    seed: int = 0,
    successor_list_size: int = 4,
) -> OverlayRouter:
    """Construct the configured overlay."""
    if kind == "chord":
        return ChordRouter.build(
            n_peers, m=id_bits, successor_list_size=successor_list_size
        )
    if kind == "can":
        return CanRouter.build(n_peers, dimensions=dimensions, seed=seed)
    raise ConfigError(f"overlay must be 'chord' or 'can', got {kind!r}")
