"""The relational front end: SQL over the P2P partition cache.

This is the architecture of the paper's Figure 2 end to end: a querying
peer parses SQL, pushes selections to the leaves, locates each leaf's
partition through the DHT, pulls tuples from caching peers (falling back to
the data source when the cache cannot answer), computes the joins locally,
and stores freshly computed partitions back into the system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chord.hashing import key_id
from repro.core.system import RangeSelectionSystem
from repro.db.catalog import Catalog
from repro.db.partition import Partition, PartitionDescriptor
from repro.db.plan.executor import (
    FetchResult,
    PartitionProvider,
    QueryResultSet,
    execute_plan,
)
from repro.db.plan.nodes import LeafSelection, ProjectNode
from repro.db.plan.planner import plan_select
from repro.db.predicates import EqualityPredicate, RangePredicate
from repro.db.sql.parser import parse_select
from repro.ranges.interval import IntRange

__all__ = ["P2PDatabase", "P2PQueryReport", "CachePartitionProvider"]


class CachePartitionProvider(PartitionProvider):
    """Resolves leaf selections through the P2P cache.

    Range selections go through the LSH scheme; equality selections on
    string attributes use exact-match SHA-1 keys (Section 3.1's simple
    case); bare scans always hit the source.

    ``fallback_to_source=False`` gives the paper's approximate behaviour:
    the user gets whatever portion of the answer the best cached partition
    provides, and nothing is fetched from the source.
    """

    def __init__(
        self,
        catalog: Catalog,
        system: RangeSelectionSystem,
        fallback_to_source: bool = True,
    ) -> None:
        self.catalog = catalog
        self.system = system
        self.fallback_to_source = fallback_to_source

    # ------------------------------------------------------------------

    def fetch(self, leaf: LeafSelection) -> FetchResult:
        primary = leaf.primary
        if isinstance(primary, RangePredicate):
            return self._fetch_range(primary)
        if isinstance(primary, EqualityPredicate):
            schema = self.catalog.schema.relation(primary.relation)
            as_range = primary.as_point_range(schema)
            if as_range is not None:
                return self._fetch_range(as_range)
            return self._fetch_equality(primary)
        # Bare scan: nothing to hash; this always costs a source access.
        self.catalog.source_accesses += 1
        rows = list(self.catalog.relation(leaf.relation).scan())
        return FetchResult(rows=rows, origin="source", coverage=1.0)

    # ------------------------------------------------------------------
    # Range selections (the paper's core path)
    # ------------------------------------------------------------------

    def _fetch_range(self, predicate: RangePredicate) -> FetchResult:
        system = self.system
        origin = system.pick_origin()
        query = predicate.range
        hashed = query
        if system.config.padding > 0:
            schema = self.catalog.schema.relation(predicate.relation)
            hashed = predicate.widen(system.config.padding, schema).range
        located = system.locate(
            hashed, predicate.relation, predicate.attribute, origin=origin
        )
        hops = located.overlay_hops
        contacted = located.peers_contacted

        best = located.best
        if best is not None and best.descriptor is not None:
            coverage = best.descriptor.containment_of(query)
            fully_answers = best.descriptor.can_answer(query)
            if fully_answers or not self.fallback_to_source:
                partition = system.fetch_rows(best, origin)
                if partition is not None:
                    return FetchResult(
                        rows=list(partition.rows),
                        origin="cache",
                        coverage=coverage if not fully_answers else 1.0,
                        overlay_hops=hops,
                        peers_contacted=contacted,
                    )

        # Cache cannot answer: compute the partition from the source and
        # store it at the identifier owners (step 5 of the procedure).
        rows = self.catalog.fetch_from_source(
            RangePredicate(predicate.relation, predicate.attribute, hashed)
        )
        partition = Partition.from_rows(
            predicate.relation, predicate.attribute, hashed, rows
        )
        if system.config.store_on_miss:
            system.store_partition(
                hashed,
                predicate.relation,
                predicate.attribute,
                partition=partition,
                origin=origin,
                identifiers=list(located.identifiers),
                owners=list(located.owners),
            )
        return FetchResult(
            rows=rows,
            origin="source+store" if system.config.store_on_miss else "source",
            coverage=1.0,
            overlay_hops=hops,
            peers_contacted=contacted,
        )

    # ------------------------------------------------------------------
    # Equality selections on string attributes (exact-match DHT keys)
    # ------------------------------------------------------------------

    def _fetch_equality(self, predicate: EqualityPredicate) -> FetchResult:
        system = self.system
        origin = system.pick_origin()
        identifier = key_id(
            predicate.relation,
            predicate.attribute,
            predicate.value,
            m=system.config.id_bits,
        )
        partition, hops = system.exact_lookup(identifier, origin=origin)
        if partition is not None:
            return FetchResult(
                rows=list(partition.rows),
                origin="cache",
                coverage=1.0,
                overlay_hops=hops,
                peers_contacted=1,
            )
        rows = self.catalog.fetch_from_source(predicate)
        # Exact-match partitions have no natural range; record the equality
        # in the descriptor via a degenerate relation-scoped tag.
        descriptor = PartitionDescriptor(
            predicate.relation,
            f"{predicate.attribute}={predicate.value!r}",
            _POINT_RANGE,
        )
        stored_partition = Partition(descriptor=descriptor, rows=tuple(rows))
        system.exact_store(identifier, descriptor, stored_partition, origin=origin)
        return FetchResult(
            rows=rows,
            origin="source+store",
            coverage=1.0,
            overlay_hops=hops,
            peers_contacted=1,
        )


# A degenerate single-value range used to tag exact-match partitions.
_POINT_RANGE = IntRange(0, 0)


@dataclass
class P2PQueryReport:
    """Everything the front end knows about one executed statement."""

    sql: str
    plan: ProjectNode
    result: QueryResultSet

    @property
    def coverage(self) -> float:
        """Lower bound on completeness (worst leaf coverage)."""
        return self.result.stats.min_coverage

    @property
    def rows(self) -> list[tuple[object, ...]]:
        """The projected result rows."""
        return self.result.rows

    def summary(self) -> str:
        """A short human-readable execution summary."""
        stats = self.result.stats
        origins = ", ".join(
            f"{rel}:{origin}" for rel, origin in sorted(stats.leaf_origins.items())
        )
        return (
            f"{len(self.result)} rows; coverage >= {self.coverage:.2f}; "
            f"hops {stats.overlay_hops}; leaves [{origins}]"
        )


class P2PDatabase:
    """SQL over the P2P range-selection system."""

    def __init__(
        self,
        catalog: Catalog,
        system: RangeSelectionSystem,
        fallback_to_source: bool = True,
    ) -> None:
        self.catalog = catalog
        self.system = system
        self.provider = CachePartitionProvider(
            catalog, system, fallback_to_source=fallback_to_source
        )
        self._statistics: dict[str, object] | None = None

    def analyze(self, n_buckets: int = 32) -> None:
        """Collect table statistics; later plans order joins by them."""
        self._statistics = self.catalog.analyze(n_buckets=n_buckets)

    def execute(self, sql: str) -> P2PQueryReport:
        """Parse, plan and execute one SELECT through the P2P cache."""
        statement = parse_select(sql)
        plan = plan_select(statement, self.catalog.schema, self._statistics)
        result = execute_plan(plan, self.catalog.schema, self.provider)
        return P2PQueryReport(sql=sql, plan=plan, result=result)

    def explain(self, sql: str) -> str:
        """The pushed-down plan for ``sql``, pretty-printed."""
        statement = parse_select(sql)
        return plan_select(statement, self.catalog.schema, self._statistics).pretty()
