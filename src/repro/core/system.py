"""The range-selection P2P system (paper Section 4).

Query procedure, exactly as the paper's pseudocode sketches it:

1. hash the (possibly padded) selection range to ``l`` identifiers;
2. route each identifier through Chord to its owning peer, counting hops;
3. each owner searches the identifier's bucket for its best match and
   replies with the candidate descriptor and score;
4. the querying peer picks the overall best reply and, for the database
   front end, fetches the winning partition's tuples from that peer;
5. "if none of the match is exact, also store the computed partition at
   the peers holding the computed identifiers."
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Callable

from repro.chord.hashing import rehash_for_placement
from repro.core.config import SystemConfig
from repro.core.matcher import Matcher, matcher_by_name
from repro.core.overlays import ChordRouter, build_overlay
from repro.db.partition import Partition, PartitionDescriptor
from repro.errors import ConfigError, PeerUnavailableError
from repro.lsh import DomainMinHashIndex, LSHIdentifierScheme, family_for_domain
from repro.net.message import Message
from repro.net.transport import SimulatedNetwork
from repro.obs.log import get_logger
from repro.obs.registry import (
    MetricsRegistry,
    RegistryBackedCounters,
    registry_field,
)
from repro.obs.trace import NULL_TRACE, QueryTrace
from repro.ranges.interval import IntRange
from repro.storage.store import LRUEviction, NoEviction, PeerStore
from repro.util.rng import derive_rng

__all__ = ["RangeSelectionSystem", "RangeQueryResult", "LocateResult", "MatchReply"]

logger = get_logger("core.system")

#: Default relation/attribute used by the pure-simulation experiments, which
#: hash bare integer ranges without a real schema behind them.
SIM_RELATION = "R"
SIM_ATTRIBUTE = "value"


@dataclass(frozen=True)
class MatchReply:
    """One owner peer's answer to a match request.

    ``peer_id`` is the peer that actually answered — under failover this
    can be a successor-list replica rather than the identifier's owner.
    """

    peer_id: int
    identifier: int
    descriptor: PartitionDescriptor | None
    score: float


@dataclass(frozen=True)
class LocateResult:
    """Outcome of locating candidate partitions for one range.

    ``owners`` records the peer that *answered* each identifier (the
    nominal owner, or the replica that served after failover); identifiers
    whose entire replica set was unreachable are absent from ``owners``
    and counted in ``unreachable``.
    """

    query: IntRange
    identifiers: tuple[int, ...]
    owners: tuple[int, ...]
    replies: tuple[MatchReply, ...]
    best: MatchReply | None
    overlay_hops: int
    peers_contacted: int
    #: Identifiers answered by a non-primary replica.
    failovers: int = 0
    #: Identifiers for which no replica answered at all.
    unreachable: int = 0


@dataclass(frozen=True)
class RangeQueryResult:
    """Outcome of one approximate range query.

    ``similarity`` is Jaccard between the original query and the match
    (the x-axis of Figures 6-7); ``recall`` is the containment of the
    original query in the match (the x-axis of Figures 8-10).  Both are 0.0
    when nothing matched.
    """

    query: IntRange
    hashed_query: IntRange
    matched: PartitionDescriptor | None
    similarity: float
    recall: float
    matcher_score: float
    exact: bool
    stored: bool
    overlay_hops: int
    peers_contacted: int

    @property
    def found(self) -> bool:
        """Whether any candidate partition was located."""
        return self.matched is not None


class SystemCounters(RegistryBackedCounters):
    """Running totals the system maintains across queries.

    Served from a :class:`~repro.obs.MetricsRegistry` (counters named
    ``system.<field>``); the attribute API is unchanged from the old
    dataclass.  A standalone ``SystemCounters()`` binds a private
    registry; the system binds its unified one.
    """

    SCALAR_FIELDS = (
        "queries",
        "exact_hits",
        "misses",
        "stores",
        "placements",
        "overlay_hops",
        "failovers",
        "failed_lookups",
        "replica_placements",
        "store_failures",
        "repairs",
    )

    queries = registry_field("queries")
    exact_hits = registry_field("exact_hits")
    misses = registry_field("misses")
    stores = registry_field("stores")
    placements = registry_field("placements")
    overlay_hops = registry_field("overlay_hops")
    #: Lookups served by a successor replica after the owner was down.
    failovers = registry_field("failovers")
    #: Lookups for which every replica was unreachable.
    failed_lookups = registry_field("failed_lookups")
    #: Redundant (non-primary) placements made by the replication layer.
    replica_placements = registry_field("replica_placements")
    #: Store placements skipped because the target replica was unreachable.
    store_failures = registry_field("store_failures")
    #: Copies created by :meth:`RangeSelectionSystem.repair_replicas`.
    repairs = registry_field("repairs")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._bind(registry, "system")
        self.by_origin = self._labeled("queries_by_origin", "origin")


class RangeSelectionSystem:
    """All peers, the ring, the hash scheme, and the query procedure."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        family = family_for_domain(config.family, config.domain)
        self.scheme = LSHIdentifierScheme.from_family(
            family, l=config.l, k=config.k, seed=config.seed, id_bits=config.id_bits
        )
        self._accel: DomainMinHashIndex | None = None
        if config.accelerate:
            self._accel = DomainMinHashIndex(self.scheme, config.domain)
        self.matcher: Matcher = matcher_by_name(config.matcher)
        self.router = build_overlay(
            config.overlay,
            config.n_peers,
            id_bits=config.id_bits,
            dimensions=config.can_dimensions,
            seed=config.seed,
            successor_list_size=max(4, config.replicas),
        )
        #: The underlying Chord ring when the overlay is Chord (used by the
        #: churn helpers and Chord-specific tests); None under CAN.
        self.ring = (
            self.router.ring if isinstance(self.router, ChordRouter) else None
        )
        #: The unified metrics registry: the transport's TrafficStats, the
        #: SystemCounters, and any engine/collector bound to this system
        #: all publish here (one export surface; see :mod:`repro.obs`).
        self.metrics = MetricsRegistry()
        self.network = SimulatedNetwork(registry=self.metrics)
        self.stores: dict[int, PeerStore] = {}
        for node_id in self.router.node_ids:
            self._register_peer(node_id)
        self._rng = derive_rng(config.seed, "system/origins")
        self.counters = SystemCounters(registry=self.metrics)

    def _place(self, identifier: int) -> int:
        """Ring position for a bucket identifier.

        ``rehash`` placement (the default) spreads buckets uniformly with
        SHA-1; ``direct`` placement uses the raw LSH identifier, which is
        what the paper's text literally describes — and which concentrates
        load, because min-hash identifiers are small by construction.  The
        bucket is always keyed by the raw identifier, so matching semantics
        are identical under both modes.
        """
        if self.config.placement == "rehash":
            return rehash_for_placement(identifier, self.config.id_bits)
        return identifier

    # ------------------------------------------------------------------
    # Peer wiring
    # ------------------------------------------------------------------

    def _register_peer(self, node_id: int) -> None:
        if config_cap := self.config.max_partitions_per_peer:
            eviction: LRUEviction | NoEviction = LRUEviction(config_cap)
        else:
            eviction = NoEviction()
        self.stores[node_id] = PeerStore(node_id, eviction)
        self.network.register(node_id, self._make_handler(node_id))

    def peer_handler(self, node_id: int):
        """The message handler of one peer, for wiring onto other
        transports (the event-driven engine registers these on its
        :class:`~repro.sim.network.AsyncNetwork`)."""
        return self._make_handler(node_id)

    def place_identifier(self, identifier: int) -> int:
        """Public access to the placement mapping (see :meth:`_place`)."""
        return self._place(identifier)

    def _make_handler(self, node_id: int):
        def handler(message: Message):
            kind = message.kind
            if kind == "match-request":
                identifier, query, relation, attribute = message.payload
                return self._handle_match(
                    node_id, identifier, query, relation, attribute
                )
            if kind == "store-request":
                identifier, descriptor, partition, primary = message.payload
                return self.stores[node_id].store(
                    identifier, descriptor, partition, primary=primary
                )
            if kind == "fetch-partition":
                identifier, descriptor = message.payload
                bucket = self.stores[node_id].bucket(identifier)
                entry = bucket.get(descriptor) if bucket is not None else None
                return entry.partition if entry is not None else None
            raise ConfigError(f"unknown message kind {kind!r}")

        return handler

    def _handle_match(
        self,
        node_id: int,
        identifier: int,
        query: IntRange,
        relation: str,
        attribute: str,
    ) -> tuple[PartitionDescriptor, float] | None:
        store = self.stores[node_id]
        score = self.matcher.score
        if self.config.local_index:
            found = store.best_match_local(query, relation, attribute, score)
        else:
            found = store.best_match_in_bucket(
                identifier, query, relation, attribute, score
            )
        if found is None:
            return None
        entry, value = found
        return (entry.descriptor, value)

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------

    def identifiers_for(self, r: IntRange) -> list[int]:
        """The ``l`` identifiers of ``r``.

        Uses the O(1) range-minimum index when the range lies inside the
        configured domain; ranges over other attribute domains (the SQL
        front end hashes ages, ids and date codes alike) fall back to the
        direct vectorized path.  Both paths produce identical identifiers.
        """
        if self._accel is not None:
            domain = self.config.domain
            if r.start >= domain.low and r.end <= domain.high:
                return self._accel.identifiers(r)
        return self.scheme.identifiers(r)

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    def replica_owners(self, identifier: int) -> list[int]:
        """The nominal replica set of ``identifier``: its owner followed by
        the next ``replicas - 1`` distinct ring successors."""
        return self.router.replica_set(
            self._place(identifier), self.config.replicas
        )

    def replica_targets(
        self, identifier: int, is_alive: Callable[[int], bool]
    ) -> list[int]:
        """Where ``identifier`` should live *right now*: the first
        ``replicas`` alive peers down the successor chain.  This is the
        repair loop's goal state — it keeps data on peers a failover
        lookup will actually reach."""
        return self.router.replica_set(
            self._place(identifier), self.config.replicas, predicate=is_alive
        )

    def failover_candidates(
        self,
        identifier: int,
        is_alive: Callable[[int], bool] | None = None,
    ) -> list[int]:
        """Peers to ask for ``identifier``, in order: the nominal replica
        set first (warm copies live there), then — when liveness is known —
        the alive successors the repair loop re-replicates onto.

        With ``replicas == 1`` there is nothing to fail over to: the list
        is just the owner, reproducing the unreplicated behaviour (a
        crashed owner means a lost lookup)."""
        candidates = self.replica_owners(identifier)
        if self.config.replicas > 1 and is_alive is not None:
            for peer in self.replica_targets(identifier, is_alive):
                if peer not in candidates:
                    candidates.append(peer)
        return candidates

    def crash_peer(self, node_id: int) -> None:
        """Fail-stop a peer on the synchronous transport (its data stays
        in place but is unreachable until :meth:`recover_peer`)."""
        self.network.crash(node_id)

    def recover_peer(self, node_id: int) -> None:
        """Bring a synchronously-crashed peer back."""
        self.network.recover(node_id)

    # ------------------------------------------------------------------
    # Query procedure
    # ------------------------------------------------------------------

    def pick_origin(self) -> int:
        """A uniformly random querying peer."""
        ids = self.router.node_ids
        return ids[int(self._rng.integers(len(ids)))]

    def start_trace(self, query: IntRange | None = None, **attrs) -> QueryTrace:
        """A :class:`~repro.obs.QueryTrace` for the synchronous path.

        The trace clock is the transport's cumulative simulated wire time
        (``network.stats.latency_ms``), so span durations measure the
        milliseconds of network traffic each step cost — the synchronous
        transport has no other notion of time.  Pass the trace to
        :meth:`query` / :meth:`locate` / :meth:`store_partition`.
        """
        if query is not None:
            attrs.setdefault("query", str(query))
        attrs.setdefault("path", "sync")
        return QueryTrace(clock=lambda: self.network.stats.latency_ms, **attrs)

    def locate(
        self,
        query: IntRange,
        relation: str = SIM_RELATION,
        attribute: str = SIM_ATTRIBUTE,
        origin: int | None = None,
        trace: QueryTrace | None = None,
    ) -> LocateResult:
        """Steps 1-4 of the query procedure (no storing).

        When the identifier's owner is unreachable the lookup fails over
        down the successor list and answers in degraded mode from whichever
        replica responds; each failover hop is charged one overlay edge
        (the successor pointer is already known, no re-routing needed).

        With a ``trace``, the lifecycle is recorded span by span: a
        ``hash`` span with one ``group`` event per identifier, then one
        ``chain`` span per identifier carrying its ``route-hop`` events
        (with the finger-table edge each hop followed), per-replica
        ``attempt`` events, ``failover`` steps and the ``match-reply``.
        """
        trace = trace if trace is not None else NULL_TRACE
        tracing = trace is not NULL_TRACE
        if origin is None:
            origin = self.pick_origin()
        with trace.span("hash") as hash_span:
            identifiers = self.identifiers_for(query)
            for group, identifier in enumerate(identifiers):
                hash_span.event(
                    "group",
                    group=group,
                    identifier=identifier,
                    placed=self._place(identifier),
                )
        locate_span = trace.span("locate", origin=origin)
        owners: list[int] = []
        replies: list[MatchReply] = []
        hops = 0
        failovers = 0
        unreachable = 0
        for identifier in identifiers:
            placed = self._place(identifier)
            chain = locate_span.span("chain", identifier=identifier, placed=placed)
            if tracing:
                hop_edges: list[tuple[int, int, str]] = []
                route_path = self.router.route(
                    placed,
                    start_id=origin,
                    recorder=lambda f, t, via: hop_edges.append((f, t, via)),
                )
                # Charge edge by edge so each route-hop event lands at
                # the wire-time the hop actually finished.
                for hop_from, hop_to, via in hop_edges:
                    self.network.charge_route((hop_from, hop_to))
                    chain.event(
                        "route-hop", source=hop_from, target=hop_to, via=via
                    )
            else:
                route_path = self.router.route(placed, start_id=origin)
                self.network.charge_route(route_path)
            owner_id, lookup_hops = route_path[-1], len(route_path) - 1
            hops += lookup_hops
            candidates = self.failover_candidates(
                identifier, is_alive=self.network.is_alive
            )
            if owner_id not in candidates:
                candidates.insert(0, owner_id)
            answer = None
            answered_by: int | None = None
            previous = owner_id
            for attempt, candidate in enumerate(candidates):
                if attempt > 0:
                    # One successor-pointer hop from the last peer tried.
                    self.network.charge_route((previous, candidate))
                    hops += 1
                    chain.event("failover", source=previous, target=candidate)
                try:
                    answer = self.network.send(
                        origin,
                        candidate,
                        "match-request",
                        payload=(identifier, query, relation, attribute),
                    )
                except PeerUnavailableError:
                    chain.event(
                        "attempt", peer=candidate, rank=attempt,
                        outcome="unreachable",
                    )
                    previous = candidate
                    continue
                chain.event(
                    "attempt", peer=candidate, rank=attempt, outcome="answered"
                )
                answered_by = candidate
                if attempt > 0:
                    failovers += 1
                    self.network.stats.failovers += 1
                    self.counters.failovers += 1
                    logger.info(
                        "degraded answer for identifier %d: replica %d "
                        "answered after %d failover step(s)",
                        identifier, candidate, attempt,
                    )
                break
            if answered_by is None:
                unreachable += 1
                self.network.stats.failover_exhausted += 1
                self.counters.failed_lookups += 1
                logger.warning(
                    "identifier %d unreachable: all %d candidates down",
                    identifier, len(candidates),
                )
                owners.append(owner_id)
                replies.append(MatchReply(owner_id, identifier, None, 0.0))
                chain.event("unreachable", identifier=identifier)
                chain.end(owner=owner_id, hops=lookup_hops, answered_by=None)
                continue
            owners.append(answered_by)
            if answer is None:
                replies.append(MatchReply(answered_by, identifier, None, 0.0))
                chain.event("match-reply", peer=answered_by, score=0.0,
                            descriptor=None)
            else:
                descriptor, score = answer
                replies.append(
                    MatchReply(answered_by, identifier, descriptor, score)
                )
                chain.event("match-reply", peer=answered_by, score=score,
                            descriptor=str(descriptor))
            chain.end(
                owner=owner_id, hops=lookup_hops, answered_by=answered_by
            )
        best = max(
            (r for r in replies if r.descriptor is not None),
            key=lambda r: r.score,
            default=None,
        )
        locate_span.end(
            hops=hops,
            failovers=failovers,
            unreachable=unreachable,
            best_score=best.score if best is not None else None,
            best_peer=best.peer_id if best is not None else None,
        )
        return LocateResult(
            query=query,
            identifiers=tuple(identifiers),
            owners=tuple(owners),
            replies=tuple(replies),
            best=best,
            overlay_hops=hops,
            peers_contacted=len(set(owners)),
            failovers=failovers,
            unreachable=unreachable,
        )

    def store_partition(
        self,
        r: IntRange,
        relation: str = SIM_RELATION,
        attribute: str = SIM_ATTRIBUTE,
        partition: Partition | None = None,
        origin: int | None = None,
        identifiers: list[int] | None = None,
        owners: list[int] | None = None,
        trace: QueryTrace | None = None,
    ) -> int:
        """Step 5: store a partition at the ``l`` identifier owners.

        With ``replicas = r > 1`` each identifier's entry is additionally
        placed on the owner's ``r - 1`` ring successors, marked as
        replicas.  Unreachable targets are skipped (and counted) — the
        repair loop re-establishes the replication factor later.

        Returns the number of *new* primary placements.  ``identifiers``
        and ``owners`` may be passed from a prior :meth:`locate` to avoid
        re-routing.  A ``trace`` records the store fan-out as one
        ``placement`` event per (identifier, target) pair.
        """
        trace = trace if trace is not None else NULL_TRACE
        if origin is None:
            origin = self.pick_origin()
        if identifiers is None:
            identifiers = self.identifiers_for(r)
        if owners is None or self.config.replicas > 1:
            targets = [self.replica_owners(i) for i in identifiers]
        else:
            targets = [[owner] for owner in owners]
        descriptor = PartitionDescriptor(relation, attribute, r)
        new_placements = 0
        size = partition.size_bytes if partition is not None else 64
        store_span = trace.span("store", descriptor=str(descriptor))
        for identifier, replica_set in zip(identifiers, targets):
            for rank, target in enumerate(replica_set):
                primary = rank == 0
                try:
                    stored = self.network.send(
                        origin,
                        target,
                        "store-request",
                        payload=(identifier, descriptor, partition, primary),
                        size_bytes=size,
                    )
                except PeerUnavailableError:
                    self.counters.store_failures += 1
                    store_span.event(
                        "placement", identifier=identifier, target=target,
                        primary=primary, outcome="unreachable",
                    )
                    continue
                if not primary:
                    self.network.stats.replica_stores += 1
                store_span.event(
                    "placement", identifier=identifier, target=target,
                    primary=primary,
                    outcome="stored" if stored else "duplicate",
                )
                if stored:
                    if primary:
                        new_placements += 1
                    else:
                        self.counters.replica_placements += 1
        store_span.end(new_placements=new_placements)
        self.counters.stores += 1
        self.counters.placements += new_placements
        return new_placements

    def fetch_rows(
        self, reply: MatchReply, origin: int
    ) -> Partition | None:
        """Retrieve the winning partition's tuples from its holder."""
        return self.network.send(
            origin,
            reply.peer_id,
            "fetch-partition",
            payload=(reply.identifier, reply.descriptor),
        )

    def query(
        self,
        query: IntRange,
        relation: str = SIM_RELATION,
        attribute: str = SIM_ATTRIBUTE,
        origin: int | None = None,
        padding: float | None = None,
        trace: QueryTrace | None = None,
    ) -> RangeQueryResult:
        """The full query procedure over a bare range (simulation mode).

        Padding (configured, or overridden per query — the adaptive
        controller uses the override) expands the range *before* hashing
        and storing, exactly as Section 5.2's padded-query experiment does;
        similarity and recall are always reported against the original
        query.

        Pass a trace from :meth:`start_trace` to capture the whole
        lifecycle; it is ended here with the outcome attributes.
        """
        trace = trace if trace is not None else NULL_TRACE
        if origin is None:
            origin = self.pick_origin()
        effective_padding = self.config.padding if padding is None else padding
        hashed_query = query
        if effective_padding > 0:
            hashed_query = query.pad(
                effective_padding,
                lower_bound=self.config.domain.low,
                upper_bound=self.config.domain.high,
            )
            trace.event(
                "padded", padding=effective_padding, hashed=str(hashed_query)
            )
        located = self.locate(
            hashed_query, relation, attribute, origin=origin, trace=trace
        )

        matched: PartitionDescriptor | None = None
        score = 0.0
        if located.best is not None:
            matched = located.best.descriptor
            score = located.best.score
        exact = matched is not None and matched.range == hashed_query
        stored = False
        if not exact and self.config.store_on_miss:
            self.store_partition(
                hashed_query,
                relation,
                attribute,
                origin=origin,
                identifiers=list(located.identifiers),
                owners=list(located.owners),
                trace=trace,
            )
            stored = True

        similarity = matched.jaccard_to(query) if matched is not None else 0.0
        recall = matched.containment_of(query) if matched is not None else 0.0
        self.counters.queries += 1
        self.counters.overlay_hops += located.overlay_hops
        if exact:
            self.counters.exact_hits += 1
        if matched is None:
            self.counters.misses += 1
        trace.end(
            matched=str(matched) if matched is not None else None,
            similarity=similarity,
            recall=recall,
            exact=exact,
            stored=stored,
            hops=located.overlay_hops,
            failovers=located.failovers,
            unreachable=located.unreachable,
        )
        return RangeQueryResult(
            query=query,
            hashed_query=hashed_query,
            matched=matched,
            similarity=similarity,
            recall=recall,
            matcher_score=score,
            exact=exact,
            stored=stored,
            overlay_hops=located.overlay_hops,
            peers_contacted=located.peers_contacted,
        )

    # ------------------------------------------------------------------
    # Exact-match keys (Section 3.1: equality predicates)
    # ------------------------------------------------------------------

    def exact_store(self, key_identifier: int, descriptor: PartitionDescriptor,
                    partition: Partition | None = None, origin: int | None = None) -> bool:
        """Store a partition under an exact-match (SHA-1) identifier."""
        if origin is None:
            origin = self.pick_origin()
        owner = self.router.owner_of(key_identifier)
        return bool(
            self.network.send(
                origin,
                owner,
                "store-request",
                payload=(key_identifier, descriptor, partition, True),
                size_bytes=partition.size_bytes if partition else 64,
            )
        )

    def exact_lookup(
        self, key_identifier: int, origin: int | None = None
    ) -> tuple[Partition | None, int]:
        """Fetch the single partition stored under an exact identifier.

        Returns (partition-or-None, overlay hops).
        """
        if origin is None:
            origin = self.pick_origin()
        owner_id, hops = self.router.lookup(key_identifier, start_id=origin)
        store = self.stores[owner_id]
        bucket = store.bucket(key_identifier)
        if bucket is None:
            return (None, hops)
        entries = list(bucket)
        if not entries:
            return (None, hops)
        partition = self.network.send(
            origin,
            owner_id,
            "fetch-partition",
            payload=(key_identifier, entries[0].descriptor),
        )
        return (partition, hops)

    # ------------------------------------------------------------------
    # Membership changes (churn extension)
    # ------------------------------------------------------------------

    def join_peer(self, address: str):
        """Add a peer to the running system and hand over its partitions.

        The overlay is rebuilt (static mode; the protocol-level incremental
        join lives in :class:`~repro.chord.ring.ChordRing`), the new peer is
        wired to the transport with an empty store, and every cached entry
        now falling in the new peer's interval migrates to it.
        """
        if self.ring is None:
            raise ConfigError("the churn helpers require the chord overlay")
        node = self.ring.add_node(address)
        self._register_peer(node.node_id)
        self.ring.build()
        self.rebalance()
        return node

    def leave_peer(self, node_id: int) -> int:
        """Gracefully remove a peer, migrating its partitions first.

        The ring's :meth:`~repro.chord.ring.ChordRing.leave` hands back the
        identifier interval whose ownership moved; every entry the peer
        held (primary or replica) is re-placed on the identifier's current
        replica set, so no descriptor is lost and a replica that just
        became the owner's copy is promoted to primary in place.

        Returns the number of entries that created at least one new copy.
        """
        if self.ring is None:
            raise ConfigError("the churn helpers require the chord overlay")
        if len(self.ring.node_ids) <= 1:
            raise ConfigError("cannot remove the last peer of the system")
        departing = self.stores.pop(node_id)
        self.network.unregister(node_id)
        self.ring.leave(node_id)
        self.ring.build()
        moved = 0
        for identifier, entry in departing.entries():
            placed = False
            for rank, target in enumerate(self.replica_owners(identifier)):
                if self.stores[target].store(
                    identifier,
                    entry.descriptor,
                    entry.partition,
                    primary=rank == 0,
                ):
                    placed = True
            if placed:
                moved += 1
        return moved

    def rebalance(self) -> int:
        """Converge every cached entry onto its current replica set.

        For each stored (identifier, descriptor): ensure all ``replicas``
        desired holders have a copy, correct primary/replica flags after
        ownership moved, and drop copies from peers outside the set.  Used
        after membership changes.  Idempotent: a second call fixes
        nothing.  Returns the number of placements that needed fixing.
        """
        placements: dict[
            tuple[int, PartitionDescriptor], dict[int, "object"]
        ] = {}
        for store in self.stores.values():
            for identifier, entry in store.entries():
                placements.setdefault((identifier, entry.descriptor), {})[
                    store.peer_id
                ] = entry
        fixed = 0
        for (identifier, descriptor), holders in placements.items():
            desired = self.replica_owners(identifier)
            partition = next(
                (e.partition for e in holders.values() if e.partition is not None),
                None,
            )
            changed = False
            for rank, target in enumerate(desired):
                primary = rank == 0
                held = holders.get(target)
                if held is None:
                    self.stores[target].store(
                        identifier, descriptor, partition, primary=primary
                    )
                    changed = True
                elif held.primary != primary:
                    held.primary = primary
                    changed = True
            for holder_id in holders:
                if holder_id not in desired:
                    self.stores[holder_id].remove(identifier, descriptor)
                    changed = True
            if changed:
                fixed += 1
        return fixed

    def replication_deficits(
        self, is_alive: Callable[[int], bool]
    ):
        """The copy operations needed to restore the replication factor.

        Yields ``(identifier, descriptor, source_id, partition, target_id,
        primary)`` tuples: ``identifier`` should live on ``target_id`` (an
        alive peer in its successor chain) but currently does not, and an
        alive ``source_id`` still holds it.  Entries whose every copy sits
        on crashed peers are unrepairable and are not yielded.  Both the
        synchronous :meth:`repair_replicas` and the event-driven
        :class:`~repro.sim.repair.ReplicaRepairer` execute this plan —
        only the transport differs.
        """
        placements: dict[
            tuple[int, PartitionDescriptor], dict[int, "object"]
        ] = {}
        for store in self.stores.values():
            if not is_alive(store.peer_id):
                continue
            for identifier, entry in store.entries():
                placements.setdefault((identifier, entry.descriptor), {})[
                    store.peer_id
                ] = entry
        for (identifier, descriptor), holders in placements.items():
            targets = self.replica_targets(identifier, is_alive)
            missing = [t for t in targets if t not in holders]
            if not missing:
                continue
            source_id, source_entry = next(iter(holders.items()))
            partition = next(
                (e.partition for e in holders.values() if e.partition is not None),
                source_entry.partition,
            )
            for target in missing:
                yield (
                    identifier,
                    descriptor,
                    source_id,
                    partition,
                    target,
                    target == targets[0],
                )

    def repair_replicas(
        self, is_alive: Callable[[int], bool] | None = None
    ) -> int:
        """One synchronous anti-entropy pass: re-replicate every
        under-replicated identifier onto alive successors.

        Copies travel peer-to-peer over the transport (charged like any
        store), so repair traffic shows up in :class:`TrafficStats`.
        Returns the number of copies created.
        """
        alive = is_alive if is_alive is not None else self.network.is_alive
        copies = 0
        for identifier, descriptor, source, partition, target, primary in list(
            self.replication_deficits(alive)
        ):
            try:
                self.network.send(
                    source,
                    target,
                    "store-request",
                    payload=(identifier, descriptor, partition, primary),
                    size_bytes=partition.size_bytes if partition else 64,
                )
            except PeerUnavailableError:
                self.counters.store_failures += 1
                continue
            copies += 1
        self.counters.repairs += copies
        if copies:
            logger.info("synchronous repair pass created %d copies", copies)
        return copies

    def check_placement_invariant(self) -> None:
        """Raise if any cached entry sits outside its replica set, or
        carries the wrong primary/replica flag."""
        for store in self.stores.values():
            for identifier, entry in store.entries():
                desired = self.replica_owners(identifier)
                if store.peer_id not in desired:
                    raise ConfigError(
                        f"entry for identifier {identifier} held by "
                        f"{store.peer_id} but owned by {desired}"
                    )
                expected_primary = store.peer_id == desired[0]
                if entry.primary != expected_primary:
                    raise ConfigError(
                        f"entry for identifier {identifier} at {store.peer_id} "
                        f"has primary={entry.primary}, expected "
                        f"{expected_primary}"
                    )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def load_distribution(self) -> list[int]:
        """Partitions stored per peer (the quantity of Figure 11)."""
        return [self.stores[nid].partition_count for nid in self.router.node_ids]

    def total_placements(self) -> int:
        """Total stored entries across all peers."""
        return sum(self.load_distribution())

    def unique_partitions(self) -> int:
        """Number of distinct partition descriptors stored system-wide."""
        seen: set[PartitionDescriptor] = set()
        for store in self.stores.values():
            for _, entry in store.entries():
                seen.add(entry.descriptor)
        return len(seen)
