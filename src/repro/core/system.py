"""The range-selection P2P system (paper Section 4).

Query procedure, exactly as the paper's pseudocode sketches it:

1. hash the (possibly padded) selection range to ``l`` identifiers;
2. route each identifier through Chord to its owning peer, counting hops;
3. each owner searches the identifier's bucket for its best match and
   replies with the candidate descriptor and score;
4. the querying peer picks the overall best reply and, for the database
   front end, fetches the winning partition's tuples from that peer;
5. "if none of the match is exact, also store the computed partition at
   the peers holding the computed identifiers."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chord.hashing import rehash_for_placement
from repro.core.config import SystemConfig
from repro.core.matcher import Matcher, matcher_by_name
from repro.core.overlays import ChordRouter, build_overlay
from repro.db.partition import Partition, PartitionDescriptor
from repro.errors import ConfigError
from repro.lsh import DomainMinHashIndex, LSHIdentifierScheme, family_for_domain
from repro.net.message import Message
from repro.net.transport import SimulatedNetwork
from repro.ranges.interval import IntRange
from repro.storage.store import LRUEviction, NoEviction, PeerStore
from repro.util.rng import derive_rng

__all__ = ["RangeSelectionSystem", "RangeQueryResult", "LocateResult", "MatchReply"]

#: Default relation/attribute used by the pure-simulation experiments, which
#: hash bare integer ranges without a real schema behind them.
SIM_RELATION = "R"
SIM_ATTRIBUTE = "value"


@dataclass(frozen=True)
class MatchReply:
    """One owner peer's answer to a match request."""

    peer_id: int
    identifier: int
    descriptor: PartitionDescriptor | None
    score: float


@dataclass(frozen=True)
class LocateResult:
    """Outcome of locating candidate partitions for one range."""

    query: IntRange
    identifiers: tuple[int, ...]
    owners: tuple[int, ...]
    replies: tuple[MatchReply, ...]
    best: MatchReply | None
    overlay_hops: int
    peers_contacted: int


@dataclass(frozen=True)
class RangeQueryResult:
    """Outcome of one approximate range query.

    ``similarity`` is Jaccard between the original query and the match
    (the x-axis of Figures 6-7); ``recall`` is the containment of the
    original query in the match (the x-axis of Figures 8-10).  Both are 0.0
    when nothing matched.
    """

    query: IntRange
    hashed_query: IntRange
    matched: PartitionDescriptor | None
    similarity: float
    recall: float
    matcher_score: float
    exact: bool
    stored: bool
    overlay_hops: int
    peers_contacted: int

    @property
    def found(self) -> bool:
        """Whether any candidate partition was located."""
        return self.matched is not None


@dataclass
class SystemCounters:
    """Running totals the system maintains across queries."""

    queries: int = 0
    exact_hits: int = 0
    misses: int = 0
    stores: int = 0
    placements: int = 0
    overlay_hops: int = 0
    by_origin: dict[str, int] = field(default_factory=dict)


class RangeSelectionSystem:
    """All peers, the ring, the hash scheme, and the query procedure."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        family = family_for_domain(config.family, config.domain)
        self.scheme = LSHIdentifierScheme.from_family(
            family, l=config.l, k=config.k, seed=config.seed, id_bits=config.id_bits
        )
        self._accel: DomainMinHashIndex | None = None
        if config.accelerate:
            self._accel = DomainMinHashIndex(self.scheme, config.domain)
        self.matcher: Matcher = matcher_by_name(config.matcher)
        self.router = build_overlay(
            config.overlay,
            config.n_peers,
            id_bits=config.id_bits,
            dimensions=config.can_dimensions,
            seed=config.seed,
        )
        #: The underlying Chord ring when the overlay is Chord (used by the
        #: churn helpers and Chord-specific tests); None under CAN.
        self.ring = (
            self.router.ring if isinstance(self.router, ChordRouter) else None
        )
        self.network = SimulatedNetwork()
        self.stores: dict[int, PeerStore] = {}
        for node_id in self.router.node_ids:
            self._register_peer(node_id)
        self._rng = derive_rng(config.seed, "system/origins")
        self.counters = SystemCounters()

    def _place(self, identifier: int) -> int:
        """Ring position for a bucket identifier.

        ``rehash`` placement (the default) spreads buckets uniformly with
        SHA-1; ``direct`` placement uses the raw LSH identifier, which is
        what the paper's text literally describes — and which concentrates
        load, because min-hash identifiers are small by construction.  The
        bucket is always keyed by the raw identifier, so matching semantics
        are identical under both modes.
        """
        if self.config.placement == "rehash":
            return rehash_for_placement(identifier, self.config.id_bits)
        return identifier

    # ------------------------------------------------------------------
    # Peer wiring
    # ------------------------------------------------------------------

    def _register_peer(self, node_id: int) -> None:
        if config_cap := self.config.max_partitions_per_peer:
            eviction: LRUEviction | NoEviction = LRUEviction(config_cap)
        else:
            eviction = NoEviction()
        self.stores[node_id] = PeerStore(node_id, eviction)
        self.network.register(node_id, self._make_handler(node_id))

    def peer_handler(self, node_id: int):
        """The message handler of one peer, for wiring onto other
        transports (the event-driven engine registers these on its
        :class:`~repro.sim.network.AsyncNetwork`)."""
        return self._make_handler(node_id)

    def place_identifier(self, identifier: int) -> int:
        """Public access to the placement mapping (see :meth:`_place`)."""
        return self._place(identifier)

    def _make_handler(self, node_id: int):
        def handler(message: Message):
            kind = message.kind
            if kind == "match-request":
                identifier, query, relation, attribute = message.payload
                return self._handle_match(
                    node_id, identifier, query, relation, attribute
                )
            if kind == "store-request":
                identifier, descriptor, partition = message.payload
                return self.stores[node_id].store(identifier, descriptor, partition)
            if kind == "fetch-partition":
                identifier, descriptor = message.payload
                bucket = self.stores[node_id].bucket(identifier)
                entry = bucket.get(descriptor) if bucket is not None else None
                return entry.partition if entry is not None else None
            raise ConfigError(f"unknown message kind {kind!r}")

        return handler

    def _handle_match(
        self,
        node_id: int,
        identifier: int,
        query: IntRange,
        relation: str,
        attribute: str,
    ) -> tuple[PartitionDescriptor, float] | None:
        store = self.stores[node_id]
        score = self.matcher.score
        if self.config.local_index:
            found = store.best_match_local(query, relation, attribute, score)
        else:
            found = store.best_match_in_bucket(
                identifier, query, relation, attribute, score
            )
        if found is None:
            return None
        entry, value = found
        return (entry.descriptor, value)

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------

    def identifiers_for(self, r: IntRange) -> list[int]:
        """The ``l`` identifiers of ``r``.

        Uses the O(1) range-minimum index when the range lies inside the
        configured domain; ranges over other attribute domains (the SQL
        front end hashes ages, ids and date codes alike) fall back to the
        direct vectorized path.  Both paths produce identical identifiers.
        """
        if self._accel is not None:
            domain = self.config.domain
            if r.start >= domain.low and r.end <= domain.high:
                return self._accel.identifiers(r)
        return self.scheme.identifiers(r)

    # ------------------------------------------------------------------
    # Query procedure
    # ------------------------------------------------------------------

    def pick_origin(self) -> int:
        """A uniformly random querying peer."""
        ids = self.router.node_ids
        return ids[int(self._rng.integers(len(ids)))]

    def locate(
        self,
        query: IntRange,
        relation: str = SIM_RELATION,
        attribute: str = SIM_ATTRIBUTE,
        origin: int | None = None,
    ) -> LocateResult:
        """Steps 1-4 of the query procedure (no storing)."""
        if origin is None:
            origin = self.pick_origin()
        identifiers = self.identifiers_for(query)
        owners: list[int] = []
        replies: list[MatchReply] = []
        hops = 0
        for identifier in identifiers:
            route_path = self.router.route(self._place(identifier), start_id=origin)
            owner_id, lookup_hops = route_path[-1], len(route_path) - 1
            hops += lookup_hops
            self.network.charge_route(route_path)
            owners.append(owner_id)
            answer = self.network.send(
                origin,
                owner_id,
                "match-request",
                payload=(identifier, query, relation, attribute),
            )
            if answer is None:
                replies.append(MatchReply(owner_id, identifier, None, 0.0))
            else:
                descriptor, score = answer
                replies.append(
                    MatchReply(owner_id, identifier, descriptor, score)
                )
        best = max(
            (r for r in replies if r.descriptor is not None),
            key=lambda r: r.score,
            default=None,
        )
        return LocateResult(
            query=query,
            identifiers=tuple(identifiers),
            owners=tuple(owners),
            replies=tuple(replies),
            best=best,
            overlay_hops=hops,
            peers_contacted=len(set(owners)),
        )

    def store_partition(
        self,
        r: IntRange,
        relation: str = SIM_RELATION,
        attribute: str = SIM_ATTRIBUTE,
        partition: Partition | None = None,
        origin: int | None = None,
        identifiers: list[int] | None = None,
        owners: list[int] | None = None,
    ) -> int:
        """Step 5: store a partition at the ``l`` identifier owners.

        Returns the number of *new* placements.  ``identifiers`` and
        ``owners`` may be passed from a prior :meth:`locate` to avoid
        re-routing.
        """
        if origin is None:
            origin = self.pick_origin()
        if identifiers is None:
            identifiers = self.identifiers_for(r)
        if owners is None:
            owners = [self.router.owner_of(self._place(i)) for i in identifiers]
        descriptor = PartitionDescriptor(relation, attribute, r)
        new_placements = 0
        for identifier, owner in zip(identifiers, owners):
            size = partition.size_bytes if partition is not None else 64
            stored = self.network.send(
                origin,
                owner,
                "store-request",
                payload=(identifier, descriptor, partition),
                size_bytes=size,
            )
            if stored:
                new_placements += 1
        self.counters.stores += 1
        self.counters.placements += new_placements
        return new_placements

    def fetch_rows(
        self, reply: MatchReply, origin: int
    ) -> Partition | None:
        """Retrieve the winning partition's tuples from its holder."""
        return self.network.send(
            origin,
            reply.peer_id,
            "fetch-partition",
            payload=(reply.identifier, reply.descriptor),
        )

    def query(
        self,
        query: IntRange,
        relation: str = SIM_RELATION,
        attribute: str = SIM_ATTRIBUTE,
        origin: int | None = None,
        padding: float | None = None,
    ) -> RangeQueryResult:
        """The full query procedure over a bare range (simulation mode).

        Padding (configured, or overridden per query — the adaptive
        controller uses the override) expands the range *before* hashing
        and storing, exactly as Section 5.2's padded-query experiment does;
        similarity and recall are always reported against the original
        query.
        """
        if origin is None:
            origin = self.pick_origin()
        effective_padding = self.config.padding if padding is None else padding
        hashed_query = query
        if effective_padding > 0:
            hashed_query = query.pad(
                effective_padding,
                lower_bound=self.config.domain.low,
                upper_bound=self.config.domain.high,
            )
        located = self.locate(hashed_query, relation, attribute, origin=origin)

        matched: PartitionDescriptor | None = None
        score = 0.0
        if located.best is not None:
            matched = located.best.descriptor
            score = located.best.score
        exact = matched is not None and matched.range == hashed_query
        stored = False
        if not exact and self.config.store_on_miss:
            self.store_partition(
                hashed_query,
                relation,
                attribute,
                origin=origin,
                identifiers=list(located.identifiers),
                owners=list(located.owners),
            )
            stored = True

        similarity = matched.jaccard_to(query) if matched is not None else 0.0
        recall = matched.containment_of(query) if matched is not None else 0.0
        self.counters.queries += 1
        self.counters.overlay_hops += located.overlay_hops
        if exact:
            self.counters.exact_hits += 1
        if matched is None:
            self.counters.misses += 1
        return RangeQueryResult(
            query=query,
            hashed_query=hashed_query,
            matched=matched,
            similarity=similarity,
            recall=recall,
            matcher_score=score,
            exact=exact,
            stored=stored,
            overlay_hops=located.overlay_hops,
            peers_contacted=located.peers_contacted,
        )

    # ------------------------------------------------------------------
    # Exact-match keys (Section 3.1: equality predicates)
    # ------------------------------------------------------------------

    def exact_store(self, key_identifier: int, descriptor: PartitionDescriptor,
                    partition: Partition | None = None, origin: int | None = None) -> bool:
        """Store a partition under an exact-match (SHA-1) identifier."""
        if origin is None:
            origin = self.pick_origin()
        owner = self.router.owner_of(key_identifier)
        return bool(
            self.network.send(
                origin,
                owner,
                "store-request",
                payload=(key_identifier, descriptor, partition),
                size_bytes=partition.size_bytes if partition else 64,
            )
        )

    def exact_lookup(
        self, key_identifier: int, origin: int | None = None
    ) -> tuple[Partition | None, int]:
        """Fetch the single partition stored under an exact identifier.

        Returns (partition-or-None, overlay hops).
        """
        if origin is None:
            origin = self.pick_origin()
        owner_id, hops = self.router.lookup(key_identifier, start_id=origin)
        store = self.stores[owner_id]
        bucket = store.bucket(key_identifier)
        if bucket is None:
            return (None, hops)
        entries = list(bucket)
        if not entries:
            return (None, hops)
        partition = self.network.send(
            origin,
            owner_id,
            "fetch-partition",
            payload=(key_identifier, entries[0].descriptor),
        )
        return (partition, hops)

    # ------------------------------------------------------------------
    # Membership changes (churn extension)
    # ------------------------------------------------------------------

    def join_peer(self, address: str):
        """Add a peer to the running system and hand over its partitions.

        The overlay is rebuilt (static mode; the protocol-level incremental
        join lives in :class:`~repro.chord.ring.ChordRing`), the new peer is
        wired to the transport with an empty store, and every cached entry
        now falling in the new peer's interval migrates to it.
        """
        if self.ring is None:
            raise ConfigError("the churn helpers require the chord overlay")
        node = self.ring.add_node(address)
        self._register_peer(node.node_id)
        self.ring.build()
        self.rebalance()
        return node

    def leave_peer(self, node_id: int) -> int:
        """Gracefully remove a peer, migrating its partitions first.

        Returns the number of entries handed over to the peer's successor.
        """
        if self.ring is None:
            raise ConfigError("the churn helpers require the chord overlay")
        departing = self.stores.pop(node_id)
        self.network.unregister(node_id)
        self.ring.remove_node(node_id)
        if not self.ring.node_ids:
            raise ConfigError("cannot remove the last peer of the system")
        self.ring.build()
        moved = 0
        for identifier, entry in departing.entries():
            owner = self.router.owner_of(self._place(identifier))
            if self.stores[owner].store(identifier, entry.descriptor, entry.partition):
                moved += 1
        return moved

    def rebalance(self) -> int:
        """Move every cached entry to its current owner; returns moves made.

        Used after membership changes.  Idempotent: a second call moves
        nothing.
        """
        relocations: list[tuple[int, int, object]] = []
        for store in self.stores.values():
            for identifier, entry in store.entries():
                owner = self.router.owner_of(self._place(identifier))
                if owner != store.peer_id:
                    relocations.append((store.peer_id, identifier, entry))
        for holder_id, identifier, entry in relocations:
            self.stores[holder_id].remove(identifier, entry.descriptor)
            self.stores[
                self.router.owner_of(self._place(identifier))
            ].store(identifier, entry.descriptor, entry.partition)
        return len(relocations)

    def check_placement_invariant(self) -> None:
        """Raise if any cached entry sits at a peer that does not own it."""
        for store in self.stores.values():
            for identifier, _entry in store.entries():
                owner = self.router.owner_of(self._place(identifier))
                if owner != store.peer_id:
                    raise ConfigError(
                        f"entry for identifier {identifier} held by "
                        f"{store.peer_id} but owned by {owner}"
                    )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def load_distribution(self) -> list[int]:
        """Partitions stored per peer (the quantity of Figure 11)."""
        return [self.stores[nid].partition_count for nid in self.router.node_ids]

    def total_placements(self) -> int:
        """Total stored entries across all peers."""
        return sum(self.load_distribution())

    def unique_partitions(self) -> int:
        """Number of distinct partition descriptors stored system-wide."""
        seen: set[PartitionDescriptor] = set()
        for store in self.stores.values():
            for _, entry in store.entries():
                seen.add(entry.descriptor)
        return len(seen)
