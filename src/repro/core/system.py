"""The range-selection P2P system (paper Section 4).

Query procedure, exactly as the paper's pseudocode sketches it:

1. hash the (possibly padded) selection range to ``l`` identifiers;
2. route each identifier through Chord to its owning peer, counting hops;
3. each owner searches the identifier's bucket for its best match and
   replies with the candidate descriptor and score;
4. the querying peer picks the overall best reply and, for the database
   front end, fetches the winning partition's tuples from that peer;
5. "if none of the match is exact, also store the computed partition at
   the peers holding the computed identifiers."
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Callable

from repro.chord.hashing import rehash_for_placement
from repro.core.config import SystemConfig
from repro.core.matcher import Matcher, matcher_by_name
from repro.core.overlays import ChordRouter, build_overlay
from repro.db.partition import Partition, PartitionDescriptor
from repro.errors import ConfigError, PeerUnavailableError
from repro.lsh import DomainMinHashIndex, LSHIdentifierScheme, family_for_domain
from repro.net.message import Message
from repro.net.transport import SimulatedNetwork
from repro.obs.log import get_logger
from repro.obs.registry import (
    MetricsRegistry,
    RegistryBackedCounters,
    registry_field,
)
from repro.obs.trace import NULL_TRACE, QueryTrace
from repro.ranges.interval import IntRange
from repro.rpc.engine import MatchReply, QueryEngine
from repro.rpc.peer import PeerLogic
from repro.rpc.transports import SyncTransport
from repro.storage.store import LRUEviction, NoEviction, PeerStore
from repro.util.rng import derive_rng

__all__ = ["RangeSelectionSystem", "RangeQueryResult", "LocateResult", "MatchReply"]

logger = get_logger("core.system")

#: Default relation/attribute used by the pure-simulation experiments, which
#: hash bare integer ranges without a real schema behind them.
SIM_RELATION = "R"
SIM_ATTRIBUTE = "value"


@dataclass(frozen=True)
class LocateResult:
    """Outcome of locating candidate partitions for one range.

    ``owners`` records the peer that *answered* each identifier (the
    nominal owner, or the replica that served after failover); identifiers
    whose entire replica set was unreachable are absent from ``owners``
    and counted in ``unreachable``.
    """

    query: IntRange
    identifiers: tuple[int, ...]
    owners: tuple[int, ...]
    replies: tuple[MatchReply, ...]
    best: MatchReply | None
    overlay_hops: int
    peers_contacted: int
    #: Identifiers answered by a non-primary replica.
    failovers: int = 0
    #: Identifiers for which no replica answered at all.
    unreachable: int = 0


@dataclass(frozen=True)
class RangeQueryResult:
    """Outcome of one approximate range query.

    ``similarity`` is Jaccard between the original query and the match
    (the x-axis of Figures 6-7); ``recall`` is the containment of the
    original query in the match (the x-axis of Figures 8-10).  Both are 0.0
    when nothing matched.
    """

    query: IntRange
    hashed_query: IntRange
    matched: PartitionDescriptor | None
    similarity: float
    recall: float
    matcher_score: float
    exact: bool
    stored: bool
    overlay_hops: int
    peers_contacted: int

    @property
    def found(self) -> bool:
        """Whether any candidate partition was located."""
        return self.matched is not None


class SystemCounters(RegistryBackedCounters):
    """Running totals the system maintains across queries.

    Served from a :class:`~repro.obs.MetricsRegistry` (counters named
    ``system.<field>``); the attribute API is unchanged from the old
    dataclass.  A standalone ``SystemCounters()`` binds a private
    registry; the system binds its unified one.
    """

    SCALAR_FIELDS = (
        "queries",
        "exact_hits",
        "misses",
        "stores",
        "placements",
        "overlay_hops",
        "failovers",
        "failed_lookups",
        "replica_placements",
        "store_failures",
        "repairs",
    )

    queries = registry_field("queries")
    exact_hits = registry_field("exact_hits")
    misses = registry_field("misses")
    stores = registry_field("stores")
    placements = registry_field("placements")
    overlay_hops = registry_field("overlay_hops")
    #: Lookups served by a successor replica after the owner was down.
    failovers = registry_field("failovers")
    #: Lookups for which every replica was unreachable.
    failed_lookups = registry_field("failed_lookups")
    #: Redundant (non-primary) placements made by the replication layer.
    replica_placements = registry_field("replica_placements")
    #: Store placements skipped because the target replica was unreachable.
    store_failures = registry_field("store_failures")
    #: Copies created by :meth:`RangeSelectionSystem.repair_replicas`.
    repairs = registry_field("repairs")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._bind(registry, "system")
        self.by_origin = self._labeled("queries_by_origin", "origin")


class RangeSelectionSystem:
    """All peers, the ring, the hash scheme, and the query procedure."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        family = family_for_domain(config.family, config.domain)
        self.scheme = LSHIdentifierScheme.from_family(
            family, l=config.l, k=config.k, seed=config.seed, id_bits=config.id_bits
        )
        self._accel: DomainMinHashIndex | None = None
        if config.accelerate:
            self._accel = DomainMinHashIndex(self.scheme, config.domain)
        self.matcher: Matcher = matcher_by_name(config.matcher)
        self.router = build_overlay(
            config.overlay,
            config.n_peers,
            id_bits=config.id_bits,
            dimensions=config.can_dimensions,
            seed=config.seed,
            successor_list_size=max(4, config.replicas),
        )
        #: The underlying Chord ring when the overlay is Chord (used by the
        #: churn helpers and Chord-specific tests); None under CAN.
        self.ring = (
            self.router.ring if isinstance(self.router, ChordRouter) else None
        )
        #: The unified metrics registry: the transport's TrafficStats, the
        #: SystemCounters, and any engine/collector bound to this system
        #: all publish here (one export surface; see :mod:`repro.obs`).
        self.metrics = MetricsRegistry()
        self.network = SimulatedNetwork(registry=self.metrics)
        self.stores: dict[int, PeerStore] = {}
        for node_id in self.router.node_ids:
            self._register_peer(node_id)
        self._rng = derive_rng(config.seed, "system/origins")
        self.counters = SystemCounters(registry=self.metrics)
        #: The synchronous transport + the shared query engine bound to it.
        #: Requests on :class:`~repro.rpc.transports.SyncTransport` settle
        #: immediately, so the engine's futures are already resolved when
        #: :meth:`locate` / :meth:`query` / :meth:`store_partition` return.
        self.transport = SyncTransport(self.network)
        self._engine = QueryEngine(self, self.transport)

    def _place(self, identifier: int) -> int:
        """Ring position for a bucket identifier.

        ``rehash`` placement (the default) spreads buckets uniformly with
        SHA-1; ``direct`` placement uses the raw LSH identifier, which is
        what the paper's text literally describes — and which concentrates
        load, because min-hash identifiers are small by construction.  The
        bucket is always keyed by the raw identifier, so matching semantics
        are identical under both modes.
        """
        if self.config.placement == "rehash":
            return rehash_for_placement(identifier, self.config.id_bits)
        return identifier

    # ------------------------------------------------------------------
    # Peer wiring
    # ------------------------------------------------------------------

    def _register_peer(self, node_id: int) -> None:
        if config_cap := self.config.max_partitions_per_peer:
            eviction: LRUEviction | NoEviction = LRUEviction(config_cap)
        else:
            eviction = NoEviction()
        self.stores[node_id] = PeerStore(node_id, eviction)
        self.network.register(node_id, self._make_handler(node_id))

    def peer_handler(self, node_id: int):
        """The message handler of one peer, for wiring onto other
        transports (the event-driven engine registers these on its
        :class:`~repro.sim.network.AsyncNetwork`)."""
        return self._make_handler(node_id)

    def place_identifier(self, identifier: int) -> int:
        """Public access to the placement mapping (see :meth:`_place`)."""
        return self._place(identifier)

    def _make_handler(self, node_id: int):
        # One PeerLogic per peer: the same dispatch the socket server
        # runs, so the data plane cannot drift between transports.
        logic = PeerLogic(
            node_id,
            self.stores[node_id],
            self.matcher,
            local_index=self.config.local_index,
        )

        def handler(message: Message):
            return logic.handle(message.kind, message.payload)

        return handler

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------

    def identifiers_for(self, r: IntRange) -> list[int]:
        """The ``l`` identifiers of ``r``.

        Uses the O(1) range-minimum index when the range lies inside the
        configured domain; ranges over other attribute domains (the SQL
        front end hashes ages, ids and date codes alike) fall back to the
        direct vectorized path.  Both paths produce identical identifiers.
        """
        if self._accel is not None:
            domain = self.config.domain
            if r.start >= domain.low and r.end <= domain.high:
                return self._accel.identifiers(r)
        return self.scheme.identifiers(r)

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    def replica_owners(self, identifier: int) -> list[int]:
        """The nominal replica set of ``identifier``: its owner followed by
        the next ``replicas - 1`` distinct ring successors."""
        return self.router.replica_set(
            self._place(identifier), self.config.replicas
        )

    def replica_targets(
        self, identifier: int, is_alive: Callable[[int], bool]
    ) -> list[int]:
        """Where ``identifier`` should live *right now*: the first
        ``replicas`` alive peers down the successor chain.  This is the
        repair loop's goal state — it keeps data on peers a failover
        lookup will actually reach."""
        return self.router.replica_set(
            self._place(identifier), self.config.replicas, predicate=is_alive
        )

    def failover_candidates(
        self,
        identifier: int,
        is_alive: Callable[[int], bool] | None = None,
    ) -> list[int]:
        """Peers to ask for ``identifier``, in order: the nominal replica
        set first (warm copies live there), then — when liveness is known —
        the alive successors the repair loop re-replicates onto.

        With ``replicas == 1`` there is nothing to fail over to: the list
        is just the owner, reproducing the unreplicated behaviour (a
        crashed owner means a lost lookup)."""
        candidates = self.replica_owners(identifier)
        if self.config.replicas > 1 and is_alive is not None:
            for peer in self.replica_targets(identifier, is_alive):
                if peer not in candidates:
                    candidates.append(peer)
        return candidates

    def crash_peer(self, node_id: int) -> None:
        """Fail-stop a peer on the synchronous transport (its data stays
        in place but is unreachable until :meth:`recover_peer`)."""
        self.network.crash(node_id)

    def recover_peer(self, node_id: int) -> None:
        """Bring a synchronously-crashed peer back."""
        self.network.recover(node_id)

    # ------------------------------------------------------------------
    # Query procedure
    # ------------------------------------------------------------------

    def pick_origin(self) -> int:
        """A uniformly random querying peer."""
        ids = self.router.node_ids
        return ids[int(self._rng.integers(len(ids)))]

    def start_trace(self, query: IntRange | None = None, **attrs) -> QueryTrace:
        """A :class:`~repro.obs.QueryTrace` for the synchronous path.

        The trace clock is the transport's cumulative simulated wire time
        (``network.stats.latency_ms``), so span durations measure the
        milliseconds of network traffic each step cost — the synchronous
        transport has no other notion of time.  Pass the trace to
        :meth:`query` / :meth:`locate` / :meth:`store_partition`.
        """
        if query is not None:
            attrs.setdefault("query", str(query))
        attrs.setdefault("path", "sync")
        return QueryTrace(clock=lambda: self.network.stats.latency_ms, **attrs)

    def locate(
        self,
        query: IntRange,
        relation: str = SIM_RELATION,
        attribute: str = SIM_ATTRIBUTE,
        origin: int | None = None,
        trace: QueryTrace | None = None,
    ) -> LocateResult:
        """Steps 1-4 of the query procedure (no storing).

        When the identifier's owner is unreachable the lookup fails over
        down the successor list and answers in degraded mode from whichever
        replica responds; each failover hop is charged one overlay edge
        (the successor pointer is already known, no re-routing needed).

        With a ``trace``, the lifecycle is recorded span by span: a
        ``hash`` span with one ``group`` event per identifier, then one
        ``chain`` span per identifier carrying its ``route-hop`` events
        (with the finger-table edge each hop followed), per-replica
        ``attempt`` events, ``failover`` steps and the ``match-reply``.
        """
        trace = trace if trace is not None else NULL_TRACE
        if origin is None:
            origin = self.pick_origin()
        # The sync transport settles every request before returning, so
        # the shared engine's future is already resolved here.
        phase = self._engine.locate(
            query, relation, attribute, origin, trace=trace
        ).result()
        owners = phase.answered_by
        replies = tuple(
            c.reply
            if c.reply is not None
            else MatchReply(c.owner, c.identifier, None, 0.0)
            for c in phase.chains
        )
        return LocateResult(
            query=query,
            identifiers=tuple(c.identifier for c in phase.chains),
            owners=owners,
            replies=replies,
            best=phase.best,
            overlay_hops=phase.overlay_hops,
            peers_contacted=len(set(owners)),
            failovers=phase.failovers,
            unreachable=phase.timeouts,
        )

    def store_partition(
        self,
        r: IntRange,
        relation: str = SIM_RELATION,
        attribute: str = SIM_ATTRIBUTE,
        partition: Partition | None = None,
        origin: int | None = None,
        identifiers: list[int] | None = None,
        owners: list[int] | None = None,
        trace: QueryTrace | None = None,
    ) -> int:
        """Step 5: store a partition at the ``l`` identifier owners.

        With ``replicas = r > 1`` each identifier's entry is additionally
        placed on the owner's ``r - 1`` ring successors, marked as
        replicas.  Unreachable targets are skipped (and counted) — the
        repair loop re-establishes the replication factor later.

        Returns the number of *new* primary placements.  ``identifiers``
        may be passed from a prior :meth:`locate` to avoid re-hashing;
        ``owners`` is accepted for backward compatibility but placement
        always targets the identifiers' *current* replica sets (with
        ``replicas = 1`` and no faults the two coincide by construction).
        A ``trace`` records the store fan-out as one ``placement`` event
        per (identifier, target) pair.
        """
        del owners  # placement recomputes replica sets; see docstring
        trace = trace if trace is not None else NULL_TRACE
        if origin is None:
            origin = self.pick_origin()
        outcome = self._engine.store(
            r, relation, attribute, origin,
            identifiers=identifiers, partition=partition, trace=trace,
        ).result()
        return outcome.new_placements

    def fetch_rows(
        self, reply: MatchReply, origin: int
    ) -> Partition | None:
        """Retrieve the winning partition's tuples from its holder."""
        return self.network.send(
            origin,
            reply.peer_id,
            "fetch-partition",
            payload=(reply.identifier, reply.descriptor),
        )

    def query(
        self,
        query: IntRange,
        relation: str = SIM_RELATION,
        attribute: str = SIM_ATTRIBUTE,
        origin: int | None = None,
        padding: float | None = None,
        trace: QueryTrace | None = None,
    ) -> RangeQueryResult:
        """The full query procedure over a bare range (simulation mode).

        Padding (configured, or overridden per query — the adaptive
        controller uses the override) expands the range *before* hashing
        and storing, exactly as Section 5.2's padded-query experiment does;
        similarity and recall are always reported against the original
        query.

        Pass a trace from :meth:`start_trace` to capture the whole
        lifecycle; it is ended here with the outcome attributes.
        """
        trace = trace if trace is not None else NULL_TRACE
        if origin is None:
            origin = self.pick_origin()
        timed = self._engine.query(
            query, relation, attribute, origin, padding=padding, trace=trace
        ).result()
        answered = {
            c.reply.peer_id if c.reply is not None else c.owner
            for c in timed.chains
        }
        return RangeQueryResult(
            query=query,
            hashed_query=timed.hashed_query,
            matched=timed.matched,
            similarity=timed.similarity,
            recall=timed.recall,
            matcher_score=timed.matcher_score,
            exact=timed.exact,
            stored=timed.stored,
            overlay_hops=timed.overlay_hops,
            peers_contacted=len(answered),
        )

    # ------------------------------------------------------------------
    # Exact-match keys (Section 3.1: equality predicates)
    # ------------------------------------------------------------------

    def exact_store(self, key_identifier: int, descriptor: PartitionDescriptor,
                    partition: Partition | None = None, origin: int | None = None) -> bool:
        """Store a partition under an exact-match (SHA-1) identifier."""
        if origin is None:
            origin = self.pick_origin()
        owner = self.router.owner_of(key_identifier)
        return bool(
            self.network.send(
                origin,
                owner,
                "store-request",
                payload=(key_identifier, descriptor, partition, True),
                size_bytes=partition.size_bytes if partition else 64,
            )
        )

    def exact_lookup(
        self, key_identifier: int, origin: int | None = None
    ) -> tuple[Partition | None, int]:
        """Fetch the single partition stored under an exact identifier.

        Returns (partition-or-None, overlay hops).
        """
        if origin is None:
            origin = self.pick_origin()
        owner_id, hops = self.router.lookup(key_identifier, start_id=origin)
        store = self.stores[owner_id]
        bucket = store.bucket(key_identifier)
        if bucket is None:
            return (None, hops)
        entries = list(bucket)
        if not entries:
            return (None, hops)
        partition = self.network.send(
            origin,
            owner_id,
            "fetch-partition",
            payload=(key_identifier, entries[0].descriptor),
        )
        return (partition, hops)

    # ------------------------------------------------------------------
    # Membership changes (churn extension)
    # ------------------------------------------------------------------

    def join_peer(self, address: str):
        """Add a peer to the running system and hand over its partitions.

        The overlay is rebuilt (static mode; the protocol-level incremental
        join lives in :class:`~repro.chord.ring.ChordRing`), the new peer is
        wired to the transport with an empty store, and every cached entry
        now falling in the new peer's interval migrates to it.
        """
        if self.ring is None:
            raise ConfigError("the churn helpers require the chord overlay")
        node = self.ring.add_node(address)
        self._register_peer(node.node_id)
        self.ring.build()
        self.rebalance()
        return node

    def leave_peer(self, node_id: int) -> int:
        """Gracefully remove a peer, migrating its partitions first.

        The ring's :meth:`~repro.chord.ring.ChordRing.leave` hands back the
        identifier interval whose ownership moved; every entry the peer
        held (primary or replica) is re-placed on the identifier's current
        replica set, so no descriptor is lost and a replica that just
        became the owner's copy is promoted to primary in place.

        Returns the number of entries that created at least one new copy.
        """
        if self.ring is None:
            raise ConfigError("the churn helpers require the chord overlay")
        if len(self.ring.node_ids) <= 1:
            raise ConfigError("cannot remove the last peer of the system")
        departing = self.stores.pop(node_id)
        self.network.unregister(node_id)
        self.ring.leave(node_id)
        self.ring.build()
        moved = 0
        for identifier, entry in departing.entries():
            placed = False
            for rank, target in enumerate(self.replica_owners(identifier)):
                if self.stores[target].store(
                    identifier,
                    entry.descriptor,
                    entry.partition,
                    primary=rank == 0,
                ):
                    placed = True
            if placed:
                moved += 1
        return moved

    def rebalance(self) -> int:
        """Converge every cached entry onto its current replica set.

        For each stored (identifier, descriptor): ensure all ``replicas``
        desired holders have a copy, correct primary/replica flags after
        ownership moved, and drop copies from peers outside the set.  Used
        after membership changes.  Idempotent: a second call fixes
        nothing.  Returns the number of placements that needed fixing.
        """
        placements: dict[
            tuple[int, PartitionDescriptor], dict[int, "object"]
        ] = {}
        for store in self.stores.values():
            for identifier, entry in store.entries():
                placements.setdefault((identifier, entry.descriptor), {})[
                    store.peer_id
                ] = entry
        fixed = 0
        for (identifier, descriptor), holders in placements.items():
            desired = self.replica_owners(identifier)
            partition = next(
                (e.partition for e in holders.values() if e.partition is not None),
                None,
            )
            changed = False
            for rank, target in enumerate(desired):
                primary = rank == 0
                held = holders.get(target)
                if held is None:
                    self.stores[target].store(
                        identifier, descriptor, partition, primary=primary
                    )
                    changed = True
                elif held.primary != primary:
                    held.primary = primary
                    changed = True
            for holder_id in holders:
                if holder_id not in desired:
                    self.stores[holder_id].remove(identifier, descriptor)
                    changed = True
            if changed:
                fixed += 1
        return fixed

    def replication_deficits(
        self, is_alive: Callable[[int], bool]
    ):
        """The copy operations needed to restore the replication factor.

        Yields ``(identifier, descriptor, source_id, partition, target_id,
        primary)`` tuples: ``identifier`` should live on ``target_id`` (an
        alive peer in its successor chain) but currently does not, and an
        alive ``source_id`` still holds it.  Entries whose every copy sits
        on crashed peers are unrepairable and are not yielded.  Both the
        synchronous :meth:`repair_replicas` and the event-driven
        :class:`~repro.sim.repair.ReplicaRepairer` execute this plan —
        only the transport differs.
        """
        placements: dict[
            tuple[int, PartitionDescriptor], dict[int, "object"]
        ] = {}
        for store in self.stores.values():
            if not is_alive(store.peer_id):
                continue
            for identifier, entry in store.entries():
                placements.setdefault((identifier, entry.descriptor), {})[
                    store.peer_id
                ] = entry
        for (identifier, descriptor), holders in placements.items():
            targets = self.replica_targets(identifier, is_alive)
            missing = [t for t in targets if t not in holders]
            if not missing:
                continue
            source_id, source_entry = next(iter(holders.items()))
            partition = next(
                (e.partition for e in holders.values() if e.partition is not None),
                source_entry.partition,
            )
            for target in missing:
                yield (
                    identifier,
                    descriptor,
                    source_id,
                    partition,
                    target,
                    target == targets[0],
                )

    def repair_replicas(
        self, is_alive: Callable[[int], bool] | None = None
    ) -> int:
        """One synchronous anti-entropy pass: re-replicate every
        under-replicated identifier onto alive successors.

        Copies travel peer-to-peer over the transport (charged like any
        store), so repair traffic shows up in :class:`TrafficStats`.
        Returns the number of copies created.
        """
        alive = is_alive if is_alive is not None else self.network.is_alive
        copies = 0
        for identifier, descriptor, source, partition, target, primary in list(
            self.replication_deficits(alive)
        ):
            try:
                self.network.send(
                    source,
                    target,
                    "store-request",
                    payload=(identifier, descriptor, partition, primary),
                    size_bytes=partition.size_bytes if partition else 64,
                )
            except PeerUnavailableError:
                self.counters.store_failures += 1
                continue
            copies += 1
        self.counters.repairs += copies
        if copies:
            logger.info("synchronous repair pass created %d copies", copies)
        return copies

    def check_placement_invariant(self) -> None:
        """Raise if any cached entry sits outside its replica set, or
        carries the wrong primary/replica flag."""
        for store in self.stores.values():
            for identifier, entry in store.entries():
                desired = self.replica_owners(identifier)
                if store.peer_id not in desired:
                    raise ConfigError(
                        f"entry for identifier {identifier} held by "
                        f"{store.peer_id} but owned by {desired}"
                    )
                expected_primary = store.peer_id == desired[0]
                if entry.primary != expected_primary:
                    raise ConfigError(
                        f"entry for identifier {identifier} at {store.peer_id} "
                        f"has primary={entry.primary}, expected "
                        f"{expected_primary}"
                    )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def load_distribution(self) -> list[int]:
        """Partitions stored per peer (the quantity of Figure 11)."""
        return [self.stores[nid].partition_count for nid in self.router.node_ids]

    def total_placements(self) -> int:
        """Total stored entries across all peers."""
        return sum(self.load_distribution())

    def unique_partitions(self) -> int:
        """Number of distinct partition descriptors stored system-wide."""
        seen: set[PartitionDescriptor] = set()
        for store in self.stores.values():
            for _, entry in store.entries():
                seen.add(entry.descriptor)
        return len(seen)
