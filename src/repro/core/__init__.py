"""The paper's system: approximate range selection over a Chord DHT.

:class:`RangeSelectionSystem` wires every substrate together — the LSH
identifier scheme, the Chord ring, per-peer bucket stores and the simulated
transport — and implements the query procedure of Section 4: hash the range
to ``l`` identifiers, route to the owning peers, collect each peer's best
in-bucket match, pick the overall winner, and store the new partition at
the owners when no exact match exists.

:class:`P2PDatabase` adds the relational front end: SQL in, partitions
located through the system, joins computed locally at the querying peer.
"""

from repro.core.adaptive import AdaptivePaddingController
from repro.core.composite import CompositeAnswer, query_composite
from repro.core.config import SystemConfig
from repro.core.matcher import (
    ContainmentMatcher,
    JaccardMatcher,
    Matcher,
    matcher_by_name,
)
from repro.core.multiattr import (
    MultiAttributeQuery,
    MultiAttributeResult,
    query_multi_attribute,
)
from repro.core.overlays import CanRouter, ChordRouter, OverlayRouter, build_overlay
from repro.core.p2pdb import P2PDatabase, P2PQueryReport
from repro.core.stats_planner import AdaptiveRoutingProvider, CostModel
from repro.core.system import RangeQueryResult, RangeSelectionSystem

__all__ = [
    "SystemConfig",
    "RangeSelectionSystem",
    "RangeQueryResult",
    "Matcher",
    "JaccardMatcher",
    "ContainmentMatcher",
    "matcher_by_name",
    "OverlayRouter",
    "ChordRouter",
    "CanRouter",
    "build_overlay",
    "AdaptiveRoutingProvider",
    "CostModel",
    "P2PDatabase",
    "P2PQueryReport",
    "AdaptivePaddingController",
    "CompositeAnswer",
    "query_composite",
    "MultiAttributeQuery",
    "MultiAttributeResult",
    "query_multi_attribute",
]
