"""Multi-attribute selections (the paper's Section 6 future work).

"In the future, we will address the problem of locating horizontal
partitions obtained by multiattribute selections."  This module takes the
natural first step the paper's machinery suggests: hash each attribute's
range independently through the same LSH scheme, locate candidates per
attribute, and combine the per-attribute answers.  The joint recall of the
combined match is the product of per-attribute recalls when attribute
values are independent, and that product is what we report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.system import RangeQueryResult, RangeSelectionSystem
from repro.errors import ConfigError
from repro.ranges.interval import IntRange

__all__ = ["MultiAttributeQuery", "MultiAttributeResult"]


@dataclass(frozen=True)
class MultiAttributeQuery:
    """A conjunctive selection over several attributes of one relation."""

    relation: str
    ranges: tuple[tuple[str, IntRange], ...]

    def __post_init__(self) -> None:
        attrs = [a for a, _ in self.ranges]
        if not attrs:
            raise ConfigError("multi-attribute query needs at least one range")
        if len(set(attrs)) != len(attrs):
            raise ConfigError(f"duplicate attributes in {attrs}")

    @classmethod
    def of(cls, relation: str, **ranges: IntRange) -> "MultiAttributeQuery":
        """Convenience constructor: ``MultiAttributeQuery.of("R", age=...)``."""
        return cls(relation, tuple(sorted(ranges.items())))


@dataclass(frozen=True)
class MultiAttributeResult:
    """Combined outcome across the query's attributes."""

    query: MultiAttributeQuery
    per_attribute: tuple[tuple[str, RangeQueryResult], ...]
    joint_recall: float
    overlay_hops: int
    peers_contacted: int

    @property
    def all_matched(self) -> bool:
        """Whether every attribute found some cached partition."""
        return all(r.found for _, r in self.per_attribute)


def query_multi_attribute(
    system: RangeSelectionSystem, query: MultiAttributeQuery
) -> MultiAttributeResult:
    """Run one multi-attribute selection through the system.

    Each attribute range is located (and cached on miss) independently,
    namespaced by ``(relation, attribute)`` so partitions of different
    attributes never collide in a bucket.
    """
    results: list[tuple[str, RangeQueryResult]] = []
    hops = 0
    contacted = 0
    for attribute, r in query.ranges:
        result = system.query(r, relation=query.relation, attribute=attribute)
        results.append((attribute, result))
        hops += result.overlay_hops
        contacted += result.peers_contacted
    joint = math.prod(result.recall for _, result in results)
    return MultiAttributeResult(
        query=query,
        per_attribute=tuple(results),
        joint_recall=joint,
        overlay_hops=hops,
        peers_contacted=contacted,
    )
