"""In-bucket match scoring.

The LSH family is necessarily defined for Jaccard similarity (Section 3.2),
but *within* a located bucket any measure may rank candidates.  Section 5.2
shows containment matching answers far more queries completely; both
matchers are provided, plus a registry for config-by-name.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.db.partition import PartitionDescriptor
from repro.ranges.interval import IntRange

__all__ = ["Matcher", "JaccardMatcher", "ContainmentMatcher", "matcher_by_name"]


class Matcher(ABC):
    """Scores a cached partition against a query range (higher is better)."""

    name: str = "abstract"

    @abstractmethod
    def score(self, query: IntRange, candidate: PartitionDescriptor) -> float:
        """The candidate's score for this query."""


class JaccardMatcher(Matcher):
    """Rank by Jaccard similarity — the measure the hashing is built on."""

    name = "jaccard"

    def score(self, query: IntRange, candidate: PartitionDescriptor) -> float:
        return candidate.jaccard_to(query)


class ContainmentMatcher(Matcher):
    """Rank by containment ``|Q ∩ R| / |Q|`` — "the more realistic
    similarity measure" from the user's perspective (Section 5.2).

    Ties (e.g. several candidates fully containing the query) are broken by
    Jaccard, preferring the *tightest* containing partition, which keeps
    transfer sizes down.
    """

    name = "containment"

    def score(self, query: IntRange, candidate: PartitionDescriptor) -> float:
        # The epsilon-weighted Jaccard term only reorders candidates with
        # equal containment; containment dominates because it is weighted
        # three orders of magnitude higher and both terms live in [0, 1].
        return candidate.containment_of(query) + 1e-3 * candidate.jaccard_to(query)


_MATCHERS: dict[str, type[Matcher]] = {
    JaccardMatcher.name: JaccardMatcher,
    ContainmentMatcher.name: ContainmentMatcher,
}


def matcher_by_name(name: str) -> Matcher:
    """Instantiate a matcher from its canonical name."""
    try:
        return _MATCHERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown matcher {name!r}; choose from {sorted(_MATCHERS)}"
        ) from None
