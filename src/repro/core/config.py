"""System configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.ranges.domain import Domain

__all__ = ["SystemConfig"]


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a :class:`RangeSelectionSystem`.

    Defaults reproduce the paper's experimental setup: 32-bit identifiers,
    ``l = 5`` groups of ``k = 20`` hash functions, approximate min-wise
    permutations (the family the paper's own simulator uses, Section 5.3),
    Jaccard in-bucket matching, no padding, store-on-miss enabled, and a
    value domain of ``[0, 1000]``.
    """

    n_peers: int = 1000
    family: str = "approx-min-wise"
    l: int = 5
    k: int = 20
    id_bits: int = 32
    domain: Domain = field(default_factory=lambda: Domain("value", 0, 1000))
    matcher: str = "jaccard"
    padding: float = 0.0
    store_on_miss: bool = True
    local_index: bool = False
    accelerate: bool = True
    max_partitions_per_peer: int | None = None
    placement: str = "rehash"
    #: Which DHT routes identifiers to owners: "chord" (the paper's choice)
    #: or "can" (its named alternative, Section 3.1).
    overlay: str = "chord"
    can_dimensions: int = 2
    #: Replication factor ``r``: each bucket entry is stored at the
    #: identifier's owner and its ``r - 1`` ring successors, and lookups
    #: fail over down that chain when the owner is unreachable.  ``1``
    #: reproduces the paper's unreplicated scheme.
    replicas: int = 1
    seed: int = 2003

    def __post_init__(self) -> None:
        if self.n_peers <= 0:
            raise ConfigError("n_peers must be positive")
        if self.l <= 0 or self.k <= 0:
            raise ConfigError("l and k must be positive")
        if not 1 <= self.id_bits <= 64:
            raise ConfigError("id_bits must be within [1, 64]")
        if self.padding < 0:
            raise ConfigError("padding must be non-negative")
        if (
            self.max_partitions_per_peer is not None
            and self.max_partitions_per_peer <= 0
        ):
            raise ConfigError("max_partitions_per_peer must be positive")
        if self.placement not in ("rehash", "direct"):
            raise ConfigError(
                f"placement must be 'rehash' or 'direct', got {self.placement!r}"
            )
        if self.overlay not in ("chord", "can"):
            raise ConfigError(
                f"overlay must be 'chord' or 'can', got {self.overlay!r}"
            )
        if self.can_dimensions < 1:
            raise ConfigError("can_dimensions must be at least 1")
        if self.replicas < 1:
            raise ConfigError("replicas must be at least 1")
        if self.replicas > 1 and self.overlay != "chord":
            raise ConfigError(
                "successor-list replication requires the chord overlay"
            )
        if self.replicas > self.n_peers:
            raise ConfigError("replicas cannot exceed n_peers")

    def describe(self) -> str:
        """One-line summary for reports."""
        pad = f", pad={self.padding:.0%}" if self.padding else ""
        return (
            f"{self.n_peers} peers, {self.family} l={self.l} k={self.k}, "
            f"matcher={self.matcher}{pad}, domain=[{self.domain.low}, "
            f"{self.domain.high}]"
        )
