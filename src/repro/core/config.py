"""System configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.ranges.domain import Domain

__all__ = ["SystemConfig"]


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a :class:`RangeSelectionSystem`.

    Defaults reproduce the paper's experimental setup: 32-bit identifiers,
    ``l = 5`` groups of ``k = 20`` hash functions, approximate min-wise
    permutations (the family the paper's own simulator uses, Section 5.3),
    Jaccard in-bucket matching, no padding, store-on-miss enabled, and a
    value domain of ``[0, 1000]``.
    """

    n_peers: int = 1000
    family: str = "approx-min-wise"
    l: int = 5
    k: int = 20
    id_bits: int = 32
    domain: Domain = field(default_factory=lambda: Domain("value", 0, 1000))
    matcher: str = "jaccard"
    padding: float = 0.0
    store_on_miss: bool = True
    local_index: bool = False
    accelerate: bool = True
    max_partitions_per_peer: int | None = None
    placement: str = "rehash"
    #: Which DHT routes identifiers to owners: "chord" (the paper's choice)
    #: or "can" (its named alternative, Section 3.1).
    overlay: str = "chord"
    can_dimensions: int = 2
    #: Replication factor ``r``: each bucket entry is stored at the
    #: identifier's owner and its ``r - 1`` ring successors, and lookups
    #: fail over down that chain when the owner is unreachable.  ``1``
    #: reproduces the paper's unreplicated scheme.
    replicas: int = 1
    #: Bounded per-peer service queue capacity on the event-driven
    #: transport (requests queued or in service); ``0`` disables the queue
    #: model entirely — peers serve instantly, the pre-overload behaviour.
    peer_queue: int = 0
    #: Per-peer service rate in requests per second (event-driven
    #: transport).  Required positive when ``peer_queue`` is on; each
    #: request then occupies the server for ``1000 / service_rate`` ms.
    service_rate: float = 0.0
    #: Launch a backup lookup for a chain still unanswered at the live
    #: p95 chain latency (first answer wins, loser cancelled).
    hedge: bool = False
    #: Partial-quorum early completion: answer once this many of the
    #: ``l`` chains replied, if the best match clears
    #: ``quorum_threshold``.  ``0`` waits for all ``l`` chains.
    quorum: int = 0
    #: Matcher score the best reply must reach before a partial quorum
    #: may answer early.
    quorum_threshold: float = 0.9
    #: Per-destination circuit breakers on the event-driven transport.
    breaker: bool = False
    #: Per-destination Jacobson RTT-based timeouts plus jittered
    #: exponential retry backoff on the event-driven transport.
    adaptive_timeout: bool = False
    seed: int = 2003

    def __post_init__(self) -> None:
        if self.n_peers <= 0:
            raise ConfigError("n_peers must be positive")
        if self.l <= 0 or self.k <= 0:
            raise ConfigError("l and k must be positive")
        if not 1 <= self.id_bits <= 64:
            raise ConfigError("id_bits must be within [1, 64]")
        if self.padding < 0:
            raise ConfigError("padding must be non-negative")
        if (
            self.max_partitions_per_peer is not None
            and self.max_partitions_per_peer <= 0
        ):
            raise ConfigError("max_partitions_per_peer must be positive")
        if self.placement not in ("rehash", "direct"):
            raise ConfigError(
                f"placement must be 'rehash' or 'direct', got {self.placement!r}"
            )
        if self.overlay not in ("chord", "can"):
            raise ConfigError(
                f"overlay must be 'chord' or 'can', got {self.overlay!r}"
            )
        if self.can_dimensions < 1:
            raise ConfigError("can_dimensions must be at least 1")
        if self.replicas < 1:
            raise ConfigError("replicas must be at least 1")
        if self.replicas > 1 and self.overlay != "chord":
            raise ConfigError(
                "successor-list replication requires the chord overlay"
            )
        if self.replicas > self.n_peers:
            raise ConfigError("replicas cannot exceed n_peers")
        if self.peer_queue < 0:
            raise ConfigError("peer_queue cannot be negative")
        if self.service_rate < 0:
            raise ConfigError("service_rate cannot be negative")
        if self.peer_queue > 0 and self.service_rate <= 0:
            raise ConfigError(
                "a bounded peer queue needs a positive service_rate"
            )
        if self.quorum < 0:
            raise ConfigError("quorum cannot be negative")
        if self.quorum > self.l:
            raise ConfigError("quorum cannot exceed l (the number of chains)")
        if not 0.0 < self.quorum_threshold <= 1.0:
            raise ConfigError("quorum_threshold must be in (0, 1]")

    def describe(self) -> str:
        """One-line summary for reports."""
        pad = f", pad={self.padding:.0%}" if self.padding else ""
        return (
            f"{self.n_peers} peers, {self.family} l={self.l} k={self.k}, "
            f"matcher={self.matcher}{pad}, domain=[{self.domain.low}, "
            f"{self.domain.high}]"
        )
