"""Command-line interface.

Usage::

    python -m repro demo                       # the quickstart scenario
    python -m repro sql "SELECT ..."           # one statement over the
                                               # medical catalog, via P2P
    python -m repro experiments --scale quick  # regenerate figure reports
    python -m repro info                       # configuration summary

The CLI is a thin shell over the library; everything it does is available
programmatically (see README quickstart).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.config import SystemConfig
from repro.core.p2pdb import P2PDatabase
from repro.core.system import RangeSelectionSystem
from repro.db.catalog import medical_catalog
from repro.errors import ReproError
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate range selection queries in P2P systems "
        "(CIDR 2003 reproduction)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="log subsystem activity to stderr (-v info, -vv debug)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the quickstart scenario")
    demo.add_argument("--peers", type=int, default=200)
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument(
        "--overlay", choices=("chord", "can"), default="chord"
    )

    sql = sub.add_parser(
        "sql", help="execute one SELECT over the medical catalog via P2P"
    )
    sql.add_argument("statement", help="the SQL statement")
    sql.add_argument("--patients", type=int, default=1000)
    sql.add_argument("--peers", type=int, default=100)
    sql.add_argument("--seed", type=int, default=11)
    sql.add_argument(
        "--explain", action="store_true", help="print the plan, don't execute"
    )
    sql.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="execute N times (later runs show cache behaviour)",
    )

    simulate = sub.add_parser(
        "simulate",
        help="event-driven queries: latency percentiles under loss/failure",
    )
    simulate.add_argument("--peers", type=int, default=1000)
    simulate.add_argument("--queries", type=int, default=100)
    simulate.add_argument(
        "--warm-queries",
        type=int,
        default=200,
        help="synchronous warmup queries that populate the buckets",
    )
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument(
        "--drop", type=float, default=0.0, help="message drop probability [0, 1)"
    )
    simulate.add_argument(
        "--fail",
        type=float,
        default=0.0,
        help="fraction of peers crashed before the timed phase [0, 1)",
    )
    simulate.add_argument(
        "--latency-ms",
        type=float,
        nargs=2,
        default=(10.0, 100.0),
        metavar=("LOW", "HIGH"),
        help="per-link one-way delay band",
    )
    simulate.add_argument(
        "--timeout-ms", type=float, default=400.0, help="per-attempt request timeout"
    )
    simulate.add_argument(
        "--retries", type=int, default=2, help="re-sends after the first attempt"
    )
    simulate.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="successor-list replication factor r (1 = the paper's "
        "unreplicated scheme; >1 enables failover lookups)",
    )
    simulate.add_argument(
        "--repair-interval",
        type=float,
        default=0.0,
        metavar="MS",
        help="virtual-time period of the anti-entropy repair task "
        "(0 = repair off)",
    )
    simulate.add_argument(
        "--peer-queue",
        type=int,
        default=0,
        metavar="N",
        help="bounded per-peer service queue capacity; full queues shed "
        "requests with a busy reply (0 = no queue model)",
    )
    simulate.add_argument(
        "--service-rate",
        type=float,
        default=0.0,
        metavar="QPS",
        help="per-peer service rate in requests/s (required with "
        "--peer-queue; load beyond it becomes queueing delay)",
    )
    simulate.add_argument(
        "--hedge",
        action="store_true",
        help="launch a backup lookup for chains still unanswered at the "
        "live p95 chain latency (first answer wins)",
    )
    simulate.add_argument(
        "--quorum",
        type=int,
        default=0,
        metavar="M",
        help="answer once M of the l chains replied if the best match "
        "clears the similarity threshold (0 = wait for all l)",
    )
    simulate.add_argument(
        "--breaker",
        action="store_true",
        help="per-destination circuit breakers: fail fast toward peers "
        "that keep timing out or shedding",
    )
    simulate.add_argument(
        "--adaptive-timeout",
        action="store_true",
        help="per-destination RTT-based timeouts plus jittered "
        "exponential retry backoff",
    )
    simulate.add_argument(
        "--slow",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="fraction of peers grey-failed before the timed phase: "
        "alive, but slowed by --slow-factor [0, 1)",
    )
    simulate.add_argument(
        "--slow-factor",
        type=float,
        default=4.0,
        metavar="X",
        help="latency and service-time multiplier for grey-failed peers",
    )
    simulate.add_argument(
        "--overlay",
        choices=("chord", "can"),
        default="chord",
        help="DHT overlay (replication and repair require chord)",
    )
    simulate.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record the first timed query's full lifecycle (spans, "
        "route hops, retries, store fan-out) as JSON to FILE",
    )
    simulate.add_argument(
        "--metrics",
        action="store_true",
        help="print the unified metrics-registry report after the run",
    )
    simulate.add_argument(
        "--sample-interval",
        type=float,
        default=0.0,
        metavar="MS",
        help="sample per-node health gauges every MS of virtual time "
        "(0 = sampling off)",
    )
    simulate.add_argument(
        "--health",
        action="store_true",
        help="print the health report (audit + load skew) after the run",
    )

    metrics = sub.add_parser(
        "metrics",
        help="run a small workload and dump the unified metrics registry",
    )
    metrics.add_argument("--peers", type=int, default=200)
    metrics.add_argument("--queries", type=int, default=50)
    metrics.add_argument("--seed", type=int, default=7)
    metrics.add_argument(
        "--replicas", type=int, default=1, help="replication factor r"
    )
    metrics.add_argument(
        "--overlay",
        choices=("chord", "can"),
        default="chord",
        help="DHT overlay (replication requires chord)",
    )
    metrics.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write the full registry snapshot as JSON to FILE",
    )
    metrics.add_argument(
        "--jsonl",
        metavar="FILE",
        default=None,
        help="also write one JSON document per metric to FILE",
    )
    metrics.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="scrape one *live* server's telemetry snapshot instead of "
        "running a local workload (--peers/--queries are ignored)",
    )

    health = sub.add_parser(
        "health",
        help="audit overlay invariants and report per-node load skew",
    )
    health.add_argument("--peers", type=int, default=200)
    health.add_argument(
        "--queries",
        type=int,
        default=100,
        help="warmup queries that populate the buckets before the audit",
    )
    health.add_argument("--seed", type=int, default=7)
    health.add_argument(
        "--replicas", type=int, default=1, help="replication factor r"
    )
    health.add_argument(
        "--overlay",
        choices=("chord", "can"),
        default="chord",
        help="DHT overlay (replication requires chord)",
    )
    health.add_argument(
        "--crash",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="crash this fraction of peers before the final audit [0, 1)",
    )
    health.add_argument(
        "--repair",
        action="store_true",
        help="run a synchronous repair pass after crashing and re-audit",
    )
    health.add_argument(
        "--top", type=int, default=5, help="hot identifiers to rank"
    )
    health.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write the health report and metrics snapshot as JSON to FILE",
    )
    health.add_argument(
        "--jsonl",
        metavar="FILE",
        default=None,
        help="write one JSON document per metric plus the health report "
        "to FILE",
    )

    experiments = sub.add_parser(
        "experiments", help="regenerate the paper's figures"
    )
    experiments.add_argument(
        "--scale", choices=("quick", "paper"), default="quick"
    )
    experiments.add_argument("--out", default="results")

    serve = sub.add_parser(
        "serve",
        help="run one peer as a TCP server (a node of a live cluster)",
    )
    serve.add_argument(
        "--address", required=True,
        help="the peer's logical address; its node id is SHA-1 of this",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = OS-assigned)"
    )
    serve.add_argument(
        "--bootstrap",
        metavar="HOST:PORT",
        default=None,
        help="an existing peer to join through (omit for the first peer)",
    )
    serve.add_argument(
        "--config-json",
        metavar="JSON",
        default=None,
        help="system configuration as JSON (all peers must agree; the "
        "bootstrap peer's config is served to clients via 'hello')",
    )
    serve.add_argument(
        "--swim-interval",
        type=float,
        default=1_000.0,
        metavar="MS",
        help="SWIM failure-detector tick period (0 = detector off; "
        "membership then only changes on join/leave)",
    )
    serve.add_argument(
        "--suspect-timeout",
        type=float,
        default=None,
        metavar="MS",
        help="how long an un-refuted suspicion lives before the peer is "
        "declared dead (default: 3x the swim interval)",
    )
    serve.add_argument(
        "--swim-proxies",
        type=int,
        default=2,
        metavar="K",
        help="indirect ping-req proxies tried before suspecting a peer",
    )
    serve.add_argument(
        "--repair-interval",
        type=float,
        default=1_000.0,
        metavar="MS",
        help="server-driven anti-entropy repair period (0 = repair "
        "stays client-driven)",
    )
    serve.add_argument(
        "--flight-dir",
        metavar="DIR",
        default=None,
        help="directory for flight-recorder incident dumps (JSONL, "
        "appended when SWIM evicts a member; omit to keep the recorder "
        "in-memory only)",
    )
    serve.add_argument(
        "--data-dir",
        metavar="DIR",
        default=None,
        help="durable store directory: every entry mutation is written "
        "to an fsync'd write-ahead log before it is acknowledged, and a "
        "restart with the same directory replays the state, resumes the "
        "persisted SWIM incarnation, and reconciles with the ring "
        "(omit to keep the peer purely in-memory)",
    )
    serve.add_argument(
        "--compact-every",
        type=int,
        default=512,
        metavar="N",
        help="fold the WAL into an atomic snapshot every N appends",
    )
    serve.add_argument(
        "--no-wal-fsync",
        action="store_true",
        help="skip the per-append fsync (faster, but an OS crash may "
        "lose acknowledged writes; process crashes are still covered)",
    )

    cluster = sub.add_parser(
        "cluster",
        help="spawn a localhost cluster of serve processes and run a "
        "scripted workload against it",
    )
    cluster.add_argument("--peers", type=int, default=8)
    cluster.add_argument(
        "--replicas", type=int, default=3, help="replication factor r"
    )
    cluster.add_argument(
        "--queries", type=int, default=30, help="timed queries to run"
    )
    cluster.add_argument("--seed", type=int, default=7)
    cluster.add_argument(
        "--smoke",
        action="store_true",
        help="fault drill: kill one non-owner replica mid-workload and "
        "exit nonzero unless recall survives via failover",
    )
    cluster.add_argument(
        "--chaos",
        metavar="SCHEDULE",
        default=None,
        help="seeded chaos drill, e.g. 'kill=1,pause=1,partition=1': "
        "play the fault waves, wait for the ring to self-heal, and exit "
        "nonzero unless membership reconverges and recall recovers",
    )
    cluster.add_argument(
        "--swim-interval",
        type=float,
        default=500.0,
        metavar="MS",
        help="SWIM tick period passed to every peer",
    )
    cluster.add_argument(
        "--suspect-timeout",
        type=float,
        default=None,
        metavar="MS",
        help="suspicion lifetime passed to every peer "
        "(default: 3x the swim interval)",
    )
    cluster.add_argument(
        "--repair-interval",
        type=float,
        default=500.0,
        metavar="MS",
        help="server-side repair period passed to every peer",
    )
    cluster.add_argument(
        "--recovery-timeout",
        type=float,
        default=90.0,
        metavar="S",
        help="how long the chaos drill waits for the ring to reconverge",
    )
    cluster.add_argument(
        "--hold",
        action="store_true",
        help="keep the ring serving after the workload (until Ctrl-C) "
        "so `repro client` can query it",
    )
    cluster.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="run one distributed-traced query after the workload (and "
        "after any drill), write the stitched trace + stitch report as "
        "JSON to FILE, and exit nonzero if no server span was stitched",
    )
    cluster.add_argument(
        "--telemetry",
        metavar="FILE",
        default=None,
        help="scrape every member's telemetry after the workload and "
        "write the merged cluster view as JSON to FILE (exit nonzero "
        "if any live member's snapshot is missing or unparseable)",
    )
    cluster.add_argument(
        "--flight-dir",
        metavar="DIR",
        default=None,
        help="pass --flight-dir DIR to every peer so incidents during "
        "the drill leave JSONL flight-recorder dumps behind",
    )
    cluster.add_argument(
        "--durable",
        action="store_true",
        help="give every peer a --data-dir under a temp root (removed "
        "on exit) so kills can be followed by restarts from disk",
    )
    cluster.add_argument(
        "--data-dir",
        metavar="DIR",
        default=None,
        help="explicit durable data root (one subdirectory per peer); "
        "implies --durable and is left in place on exit",
    )
    cluster.add_argument(
        "--restart-drill",
        action="store_true",
        help="durability drill: SIGKILL *all* replica holders of a "
        "probed entry, restart them from disk, and exit nonzero unless "
        "recall returns to the warm level with the restore counters "
        "proving the data came back from disk (implies --durable)",
    )
    cluster.add_argument(
        "--cold-restart",
        action="store_true",
        help="durability drill: SIGKILL every peer, restart the whole "
        "cluster from disk, and exit nonzero unless recall is preserved "
        "exactly (implies --durable)",
    )

    client = sub.add_parser(
        "client", help="run one query against a live cluster"
    )
    client.add_argument(
        "--bootstrap",
        metavar="HOST:PORT",
        required=True,
        help="any live peer of the cluster",
    )
    client.add_argument(
        "--query",
        metavar="START:END",
        required=True,
        help="the range to query, e.g. 100:200",
    )
    client.add_argument(
        "--repeat", type=int, default=1,
        help="run the query N times (later runs show cache behaviour)",
    )

    top = sub.add_parser(
        "top",
        help="live cluster dashboard: per-peer QPS, queue depth, repair "
        "debt, breaker and SWIM state, plus cluster-wide latency "
        "percentiles and load skew",
    )
    top.add_argument(
        "--bootstrap",
        metavar="HOST:PORT",
        required=True,
        help="any live peer of the cluster",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds between scrapes",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="stop after N refreshes (0 = run until Ctrl-C)",
    )
    top.add_argument(
        "--plain",
        action="store_true",
        help="append tables instead of redrawing the screen (CI/logs)",
    )
    top.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write the final merged cluster view as JSON to FILE",
    )

    trace = sub.add_parser(
        "trace",
        help="run one query as a distributed trace and pretty-print the "
        "stitched cross-process span tree",
    )
    trace.add_argument(
        "--bootstrap",
        metavar="HOST:PORT",
        required=True,
        help="any live peer of the cluster",
    )
    trace.add_argument(
        "--query",
        metavar="START:END",
        required=True,
        help="the range to query, e.g. 100:200",
    )
    trace.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="trace the query N times",
    )
    trace.add_argument(
        "--follow",
        action="store_true",
        help="keep tracing (one query per --interval) until Ctrl-C",
    )
    trace.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds between traced queries with --follow",
    )
    trace.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write the last stitched trace + stitch report as JSON "
        "to FILE",
    )

    sub.add_parser("info", help="print the default configuration")
    return parser


def _run_demo(args: argparse.Namespace, out) -> int:
    config = SystemConfig(
        n_peers=args.peers, seed=args.seed, overlay=args.overlay
    )
    system = RangeSelectionSystem(config)
    print(f"system: {config.describe()}", file=out)
    cold = system.query(IntRange(30, 50))
    print(
        f"query [30, 50]: matched={cold.matched} stored={cold.stored}",
        file=out,
    )
    warm = system.query(IntRange(30, 49))
    print(
        f"query [30, 49]: matched={warm.matched} "
        f"similarity={warm.similarity:.3f} recall={warm.recall:.2f} "
        f"hops={warm.overlay_hops}",
        file=out,
    )
    return 0


def _run_sql(args: argparse.Namespace, out) -> int:
    catalog = medical_catalog(n_patients=args.patients)
    system = RangeSelectionSystem(
        SystemConfig(
            n_peers=args.peers,
            seed=args.seed,
            accelerate=False,
            matcher="containment",
            domain=Domain("value", 0, 10**6),
        )
    )
    db = P2PDatabase(catalog, system)
    if args.explain:
        print(db.explain(args.statement), file=out)
        return 0
    for run_index in range(max(1, args.repeat)):
        report = db.execute(args.statement)
        print(f"run {run_index + 1}: {report.summary()}", file=out)
        if run_index == 0:
            for row in report.result.decoded_rows(catalog.schema)[:10]:
                print(f"  {row}", file=out)
            if len(report.rows) > 10:
                print(f"  ... {len(report.rows) - 10} more rows", file=out)
    print(f"source accesses: {catalog.source_accesses}", file=out)
    return 0


def _run_simulate(args: argparse.Namespace, out) -> int:
    from repro.metrics.latency import LatencyCollector
    from repro.net.latency import SeededLatency
    from repro.sim import AsyncQueryEngine, ReplicaRepairer, RetryPolicy
    from repro.util.rng import derive_rng
    from repro.workloads.generators import UniformRangeWorkload

    if not 0.0 <= args.drop < 1.0:
        raise ReproError("--drop must be within [0, 1)")
    if not 0.0 <= args.fail < 1.0:
        raise ReproError("--fail must be within [0, 1)")
    low_ms, high_ms = args.latency_ms
    if not 0.0 <= low_ms <= high_ms:
        raise ReproError("--latency-ms needs 0 <= LOW <= HIGH")
    if args.repair_interval < 0:
        raise ReproError("--repair-interval cannot be negative")
    if args.sample_interval < 0:
        raise ReproError("--sample-interval cannot be negative")
    if args.overlay == "can" and args.repair_interval > 0:
        raise ReproError("--repair-interval requires the chord overlay")
    if not 0.0 <= args.slow < 1.0:
        raise ReproError("--slow must be within [0, 1)")
    if args.slow_factor < 1.0:
        raise ReproError("--slow-factor must be >= 1")
    config = SystemConfig(
        n_peers=args.peers,
        seed=args.seed,
        replicas=args.replicas,
        overlay=args.overlay,
        peer_queue=args.peer_queue,
        service_rate=args.service_rate,
        hedge=args.hedge,
        quorum=args.quorum,
        breaker=args.breaker,
        adaptive_timeout=args.adaptive_timeout,
    )
    system = RangeSelectionSystem(config)
    print(f"system: {config.describe()}", file=out)
    for query in UniformRangeWorkload(
        config.domain, args.warm_queries, seed=args.seed + 1
    ).ranges():
        system.query(query)
    engine = AsyncQueryEngine(
        system,
        latency=SeededLatency(low_ms, high_ms, seed=args.seed),
        drop_probability=args.drop,
        policy=RetryPolicy(timeout_ms=args.timeout_ms, max_retries=args.retries),
        seed=args.seed,
    )
    node_ids = system.router.node_ids
    n_crashed = int(round(args.fail * len(node_ids)))
    crash_rng = derive_rng(args.seed, "cli/simulate-crashes")
    for index in crash_rng.choice(len(node_ids), size=n_crashed, replace=False):
        engine.crash_peer(node_ids[int(index)])
    n_slow = int(round(args.slow * len(node_ids)))
    if n_slow:
        slow_rng = derive_rng(args.seed, "cli/simulate-slow")
        for index in slow_rng.choice(len(node_ids), size=n_slow, replace=False):
            engine.slow_peer(
                node_ids[int(index)],
                latency_factor=args.slow_factor,
                service_factor=args.slow_factor,
            )
    print(
        f"faults: drop={args.drop:.0%}, crashed {n_crashed}/{len(node_ids)} peers; "
        f"link delay [{low_ms:g}, {high_ms:g}] ms, "
        f"timeout {args.timeout_ms:g} ms x{args.retries + 1} attempts; "
        f"replicas={args.replicas}",
        file=out,
    )
    overload_on = (
        args.peer_queue or n_slow or args.hedge or args.quorum
        or args.breaker or args.adaptive_timeout
    )
    if overload_on:
        print(
            f"overload: queue={args.peer_queue} @ {args.service_rate:g} req/s, "
            f"slow {n_slow}/{len(node_ids)} peers x{args.slow_factor:g}, "
            f"hedge={'on' if args.hedge else 'off'}, "
            f"quorum={args.quorum or 'off'}, "
            f"breaker={'on' if args.breaker else 'off'}, "
            f"adaptive={'on' if args.adaptive_timeout else 'off'}",
            file=out,
        )
    repairer = None
    if args.repair_interval > 0:
        repairer = ReplicaRepairer(engine, interval_ms=args.repair_interval)
        # Heal the crash damage once up front, then keep healing on the
        # virtual clock while the timed queries drive it.
        engine.sim.run_until_complete(repairer.run_round())
        repairer.start()
    sampler = None
    if args.sample_interval > 0:
        from repro.obs.health import TelemetrySampler

        sampler = TelemetrySampler(
            system,
            sim=engine.sim,
            is_alive=engine.net.is_alive,
            interval_ms=args.sample_interval,
        )
        sampler.sample_once()
        sampler.start()
    collector = LatencyCollector(registry=system.metrics)
    dead_queries = 0
    for index, query in enumerate(
        UniformRangeWorkload(config.domain, args.queries, seed=args.seed + 2).ranges()
    ):
        trace = None
        if args.trace is not None and index == 0:
            trace = engine.start_trace(query)
        result = engine.run(query, trace=trace)
        collector.add(result)
        if result.timeouts == len(result.chains) and not result.found:
            dead_queries += 1
        if trace is not None:
            with open(args.trace, "w", encoding="utf-8") as handle:
                handle.write(trace.to_json(indent=2))
            print(f"trace: wrote query lifecycle to {args.trace}", file=out)
    if repairer is not None:
        repairer.stop()
    if sampler is not None:
        sampler.stop()
        sampler.sample_once()
        print(
            f"sampler: {sampler.samples_taken} samples at "
            f"{args.sample_interval:g} ms intervals",
            file=out,
        )
    print(collector.report(), file=out)
    stats = engine.net.stats
    overload_traffic = ""
    if stats.busy_shed or stats.hedges:
        overload_traffic = (
            f", {stats.busy_shed} busy-shed, {stats.hedges} hedges "
            f"({stats.hedge_wins} won)"
        )
    print(
        f"traffic: {stats.messages} messages, {stats.drops} dropped, "
        f"{stats.retries} retries, {stats.timeouts} request timeouts, "
        f"{stats.failovers} failovers, {stats.replica_stores} replica stores"
        f"{overload_traffic}",
        file=out,
    )
    if repairer is not None:
        print(f"repair: {repairer.stats.describe()}", file=out)
    if args.health:
        from repro.obs.health import health_check

        print(
            health_check(system, is_alive=engine.net.is_alive).report(),
            file=out,
        )
    if args.metrics:
        print(system.metrics.report("Simulation metrics"), file=out)
    if args.queries > 0 and dead_queries == args.queries:
        print(
            f"warning: all {args.queries} queries failed (every lookup "
            "chain timed out or was shed) — the summary above reflects "
            "no successful lookups; lower the load or raise the fault "
            "budget (timeout, retries, replicas)",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_metrics(args: argparse.Namespace, out) -> int:
    from repro.workloads.generators import UniformRangeWorkload

    if args.connect is not None:
        return _run_metrics_connect(args, out)
    config = SystemConfig(
        n_peers=args.peers,
        seed=args.seed,
        replicas=args.replicas,
        overlay=args.overlay,
    )
    system = RangeSelectionSystem(config)
    print(f"system: {config.describe()}", file=out)
    for query in UniformRangeWorkload(
        config.domain, args.queries, seed=args.seed + 1
    ).ranges():
        system.query(query)
    print(system.metrics.report("Metrics after workload"), file=out)
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(system.metrics.to_json(indent=2))
        print(f"wrote JSON snapshot to {args.json}", file=out)
    if args.jsonl is not None:
        with open(args.jsonl, "w", encoding="utf-8") as handle:
            handle.write(system.metrics.to_jsonl())
        print(f"wrote JSONL dump to {args.jsonl}", file=out)
    return 0


def _run_metrics_connect(args: argparse.Namespace, out) -> int:
    """Scrape one live server's versioned telemetry snapshot."""
    import asyncio
    import json

    from repro.metrics.report import format_table
    from repro.obs.distributed import counter_series
    from repro.rpc import wire

    host, port = _parse_endpoint(args.connect)
    reply = asyncio.run(
        wire.call(host, port, "telemetry", timeout_ms=10_000.0)
    )
    if not isinstance(reply, dict) or reply.get("version") is None:
        print(
            f"error: {args.connect} returned an unversioned telemetry "
            f"snapshot: {reply!r:.200}",
            file=sys.stderr,
        )
        return 1
    print(
        f"node {reply.get('node')} (id {reply.get('node_id')}), "
        f"telemetry v{reply.get('version')}",
        file=out,
    )
    print(
        f"captured: mono {reply.get('captured_mono_ms', 0.0):.1f} ms, "
        f"wall {reply.get('captured_wall_ms', 0.0):.1f} ms",
        file=out,
    )
    census = reply.get("census") or {}
    flight = reply.get("flight") or {}
    print(
        f"queue depth {reply.get('queue_depth', 0)}, "
        f"pending repair {reply.get('pending_repair', 0)}, "
        f"census {census.get('entries', 0)} entries "
        f"({census.get('primaries', 0)} primary / "
        f"{census.get('replicas', 0)} replica), "
        f"flight recorder {flight.get('retained', 0)}/"
        f"{flight.get('recorded', 0)} retained "
        f"({flight.get('dumps', 0)} dumps)",
        file=out,
    )
    swim = reply.get("swim") or {}
    states = swim.get("states") or {}
    print(
        f"swim: epoch {swim.get('epoch')}, "
        + (
            ", ".join(
                f"{address}={state}" for address, state in sorted(states.items())
            )
            or "no members"
        ),
        file=out,
    )
    requests = counter_series(reply.get("metrics") or {}, "server.requests")
    if requests:
        rows = sorted(requests.items(), key=lambda kv: -kv[1])
        print(
            format_table(
                ("request kind", "count"), rows, title="Requests served"
            ),
            file=out,
        )
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(reply, handle, indent=2, default=str)
        print(f"wrote JSON snapshot to {args.json}", file=out)
    return 0


def _run_health(args: argparse.Namespace, out) -> int:
    import json

    from repro.obs.health import TelemetrySampler, health_check
    from repro.util.rng import derive_rng
    from repro.workloads.generators import UniformRangeWorkload

    if not 0.0 <= args.crash < 1.0:
        raise ReproError("--crash must be within [0, 1)")
    if args.repair and args.overlay != "chord":
        raise ReproError("--repair requires the chord overlay")
    config = SystemConfig(
        n_peers=args.peers,
        seed=args.seed,
        replicas=args.replicas,
        overlay=args.overlay,
    )
    system = RangeSelectionSystem(config)
    print(f"system: {config.describe()}", file=out)
    for query in UniformRangeWorkload(
        config.domain, args.queries, seed=args.seed + 1
    ).ranges():
        system.query(query)
    sampler = TelemetrySampler(system)
    sampler.sample_once()
    node_ids = system.router.node_ids
    n_crashed = int(round(args.crash * len(node_ids)))
    if n_crashed:
        crash_rng = derive_rng(args.seed, "cli/health-crashes")
        for index in crash_rng.choice(
            len(node_ids), size=n_crashed, replace=False
        ):
            system.crash_peer(node_ids[int(index)])
        print(f"crashed {n_crashed}/{len(node_ids)} peers", file=out)
        sampler.sample_once()
    report = health_check(system, top_n=args.top)
    print(report.report(), file=out)
    if args.repair and n_crashed:
        copies = system.repair_replicas()
        sampler.sample_once()
        report = health_check(system, top_n=args.top)
        print(f"\nrepair created {copies} copies; re-audit:", file=out)
        print(report.report(), file=out)
    if args.json is not None:
        document = {
            "health": report.to_dict(),
            "metrics": system.metrics.snapshot(),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, default=str)
        print(f"wrote JSON snapshot to {args.json}", file=out)
    if args.jsonl is not None:
        with open(args.jsonl, "w", encoding="utf-8") as handle:
            handle.write(system.metrics.to_jsonl())
            handle.write("\n")
            handle.write(json.dumps({"health": report.to_dict()}, default=str))
            handle.write("\n")
        print(f"wrote JSONL dump to {args.jsonl}", file=out)
    return 0


def _parse_endpoint(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ReproError(f"expected HOST:PORT, got {text!r}")
    return (host, int(port))


def _run_serve(args: argparse.Namespace, out) -> int:
    import asyncio
    import json

    from repro.rpc import wire
    from repro.rpc.server import run_server

    if args.config_json is not None:
        try:
            config = wire.config_from_wire(json.loads(args.config_json))
        except (ValueError, KeyError, TypeError) as exc:
            raise ReproError(f"bad --config-json: {exc}") from exc
    else:
        config = SystemConfig()
    bootstrap = (
        _parse_endpoint(args.bootstrap) if args.bootstrap is not None else None
    )
    try:
        asyncio.run(
            run_server(
                args.address,
                config,
                host=args.host,
                port=args.port,
                bootstrap=bootstrap,
                swim_interval_ms=args.swim_interval,
                suspect_timeout_ms=args.suspect_timeout,
                swim_proxies=args.swim_proxies,
                repair_interval_ms=args.repair_interval,
                flight_dir=args.flight_dir,
                data_dir=args.data_dir,
                wal_fsync=not args.no_wal_fsync,
                compact_every=args.compact_every,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


def _run_cluster(args: argparse.Namespace, out) -> int:
    from repro.rpc.cluster import LocalCluster
    from repro.workloads.generators import UniformRangeWorkload

    if args.peers < 2:
        raise ReproError("--peers must be at least 2")
    durable = bool(
        args.durable or args.data_dir or args.restart_drill or args.cold_restart
    )
    if args.restart_drill and args.peers <= args.replicas:
        raise ReproError(
            "--restart-drill needs --peers > --replicas (a survivor must "
            "remain outside the killed replica set)"
        )
    config = SystemConfig(
        n_peers=args.peers, seed=args.seed, replicas=args.replicas
    )
    queries = list(
        UniformRangeWorkload(
            config.domain, args.queries, seed=args.seed + 2
        ).ranges()
    )
    with LocalCluster(
        args.peers,
        config,
        swim_interval_ms=args.swim_interval,
        suspect_timeout_ms=args.suspect_timeout,
        repair_interval_ms=args.repair_interval,
        flight_dir=args.flight_dir,
        durable=durable,
        data_root=args.data_dir,
    ) as cluster:
        endpoints = ", ".join(
            f"{address}@{host}:{port}"
            for address, (host, port) in cluster.endpoints.items()
        )
        print(f"cluster: {args.peers} peers up ({endpoints})", file=out)
        with cluster.client() as client:
            # Warm pass: populate the buckets (store-on-miss).
            for query in queries:
                client.query(query)
            warm = [client.query(query) for query in queries]
            warm_recall = sum(r.recall for r in warm) / max(1, len(warm))
            print(
                f"warm: {len(warm)} queries, mean recall {warm_recall:.2f}",
                file=out,
            )
            victim = None
            if args.smoke:
                if args.replicas < 2:
                    raise ReproError("--smoke needs --replicas >= 2")
                victim = _pick_smoke_victim(client, queries[0])
                cluster.kill(victim)
                print(f"smoke: killed {victim} (SIGKILL)", file=out)
            after = [client.query(query) for query in queries]
            recall = sum(r.recall for r in after) / max(1, len(after))
            failovers = client.system.counters.failovers
            failed = client.system.counters.failed_lookups
            print(
                f"after: {len(after)} queries, mean recall {recall:.2f}, "
                f"{failovers} failovers, {failed} failed lookups",
                file=out,
            )
            if args.smoke:
                copies = client.repair()
                print(f"repair: created {copies} copies", file=out)
                if recall < warm_recall - 1e-9:
                    print(
                        f"error: recall dropped after the kill "
                        f"({warm_recall:.3f} -> {recall:.3f})",
                        file=sys.stderr,
                    )
                    return 1
                if failovers == 0:
                    print(
                        "error: the killed replica was never failed over "
                        "(did the kill land?)",
                        file=sys.stderr,
                    )
                    return 1
                print("smoke: recall survived the kill", file=out)
            if args.chaos:
                status = _run_chaos_drill(
                    args, cluster, client, queries, warm_recall, out
                )
                if status != 0:
                    return status
            if args.trace or args.telemetry:
                status = _capture_cluster_observability(
                    args, client, queries, out
                )
                if status != 0:
                    return status
        # The restart drills recycle peer processes (fresh OS ports), so
        # they run outside the client block and build their own clients.
        if args.restart_drill:
            status = _run_restart_drill(
                args, cluster, queries, warm_recall, out
            )
            if status != 0:
                return status
        if args.cold_restart:
            status = _run_cold_restart_drill(
                args, cluster, queries, warm_recall, out
            )
            if status != 0:
                return status
        if args.hold:
            import time

            boot_host, boot_port = cluster.bootstrap_endpoint()
            print(
                f"holding: query with `python -m repro client "
                f"--bootstrap {boot_host}:{boot_port} --query START:END` "
                f"(Ctrl-C to stop)",
                file=out,
            )
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                pass
    return 0


def _run_chaos_drill(
    args, cluster, client, queries, warm_recall: float, out
) -> int:
    """Play a seeded chaos schedule, then gate on ring self-healing."""
    from repro.rpc.chaos import ChaosRunner, ChaosSchedule

    counts = ChaosSchedule.parse_spec(args.chaos)
    bootstrap_address = next(iter(cluster.endpoints))
    schedule = ChaosSchedule.generate(
        args.seed,
        list(cluster.endpoints),
        counts,
        protect=(bootstrap_address,),
    )
    print(f"chaos: schedule [{schedule.describe()}]", file=out)
    runner = ChaosRunner(cluster, schedule)
    runner.run()
    # The schedule is over: lift residual delay/drop faults (partitions
    # heal via their own scheduled event) and let the ring converge.
    cluster.heal()
    if not _await_reconvergence(cluster, client, args.recovery_timeout):
        live = sorted(a for a in cluster.endpoints if cluster.alive(a))
        print(
            f"error: membership never reconverged within "
            f"{args.recovery_timeout:g}s (live={live}, "
            f"mirrored={sorted(client.members)})",
            file=sys.stderr,
        )
        return 1
    healed = [client.query(query) for query in queries]
    recall = sum(r.recall for r in healed) / max(1, len(healed))
    print(
        f"healed: {len(healed)} queries, mean recall {recall:.2f} "
        f"(warm was {warm_recall:.2f}), {len(runner.applied)} faults applied",
        file=out,
    )
    if recall < warm_recall - 1e-9:
        print(
            f"error: recall did not recover after chaos "
            f"({warm_recall:.3f} -> {recall:.3f})",
            file=sys.stderr,
        )
        return 1
    print("chaos: ring self-healed, recall recovered", file=out)
    return 0


def _restore_counters_of(client, address: str) -> tuple[float, float]:
    """(restore.entries, restore.wal_records) of one peer's registry."""
    from repro.obs.distributed import counter_total

    snapshot = client.metrics_of(address)
    return (
        counter_total(snapshot, "restore.entries"),
        counter_total(snapshot, "restore.wal_records"),
    )


def _run_restart_drill(args, cluster, queries, warm_recall: float, out) -> int:
    """Kill *all* replica holders of a probed entry, restart from disk.

    The drill proves durability end to end: after the kills no live peer
    holds the probed identifier (verified by scanning every survivor),
    so when recall returns after the restarts the data can only have
    come from the restarted peers' WAL/snapshot state — which the
    ``restore.entries`` counters confirm.
    """
    probe = queries[0]
    with cluster.client() as client:
        system = client.system
        ring = system.router.ring
        identifier = system.identifiers_for(probe)[0]
        holders = [
            ring.node(node_id).address
            for node_id in system.replica_owners(identifier)
        ]
    survivors = [
        address
        for address in cluster.endpoints
        if cluster.alive(address) and address not in holders
    ]
    if not survivors:
        raise ReproError(
            "restart drill: every peer is a replica holder; raise --peers"
        )
    for address in holders:
        if cluster.alive(address):
            cluster.kill(address)
    print(
        f"restart drill: killed all {len(holders)} replica holder(s) of "
        f"identifier {identifier}: {', '.join(holders)}",
        file=out,
    )
    with cluster.client() as client:
        for address in survivors:
            for entry in client.entries_of(address):
                if int(entry[0]) == identifier:
                    print(
                        f"error: survivor {address} still holds the probed "
                        "identifier — the kill set missed a copy",
                        file=sys.stderr,
                    )
                    return 1
    print(
        "restart drill: zero surviving in-memory copies of the probed "
        "identifier",
        file=out,
    )
    for address in holders:
        cluster.restart(address)
    with cluster.client() as client:
        if not _await_reconvergence(cluster, client, args.recovery_timeout):
            print(
                f"error: membership never reconverged within "
                f"{args.recovery_timeout:g}s of the restarts",
                file=sys.stderr,
            )
            return 1
        for address in holders:
            entries, wal_records = _restore_counters_of(client, address)
            print(
                f"restart drill: {address} restored {entries:g} entrie(s) "
                f"({wal_records:g} WAL record(s)) from disk",
                file=out,
            )
            if entries <= 0:
                print(
                    f"error: restarted peer {address} restored nothing "
                    "from disk",
                    file=sys.stderr,
                )
                return 1
        after = [client.query(query) for query in queries]
        recall = sum(r.recall for r in after) / max(1, len(after))
    print(
        f"restart drill: recall {recall:.2f} after restart "
        f"(warm was {warm_recall:.2f})",
        file=out,
    )
    if recall < warm_recall - 1e-9:
        print(
            f"error: recall did not return after the restarts "
            f"({warm_recall:.3f} -> {recall:.3f})",
            file=sys.stderr,
        )
        return 1
    print("restart drill: recovery came from disk, recall restored", file=out)
    return 0


def _run_cold_restart_drill(
    args, cluster, queries, warm_recall: float, out
) -> int:
    """SIGKILL every peer, restart the whole cluster from disk."""
    addresses = list(cluster.endpoints)
    for address in addresses:
        if cluster.alive(address):
            cluster.kill(address)
    print(
        f"cold restart: killed all {len(addresses)} peer(s)", file=out
    )
    # The first peer back finds no live bootstrap and seeds a fresh ring
    # from its disk state; the rest join through it.
    for address in addresses:
        cluster.restart(address)
    with cluster.client() as client:
        if not _await_reconvergence(cluster, client, args.recovery_timeout):
            print(
                f"error: membership never reconverged within "
                f"{args.recovery_timeout:g}s of the cold restart",
                file=sys.stderr,
            )
            return 1
        total_restored = 0.0
        for address in addresses:
            entries, _wal = _restore_counters_of(client, address)
            total_restored += entries
        after = [client.query(query) for query in queries]
        recall = sum(r.recall for r in after) / max(1, len(after))
    print(
        f"cold restart: {total_restored:g} entrie(s) restored across the "
        f"ring, recall {recall:.2f} (warm was {warm_recall:.2f})",
        file=out,
    )
    if total_restored <= 0:
        print(
            "error: the cold restart restored nothing from disk",
            file=sys.stderr,
        )
        return 1
    if recall < warm_recall - 1e-9:
        print(
            f"error: the cold restart lost recall "
            f"({warm_recall:.3f} -> {recall:.3f})",
            file=sys.stderr,
        )
        return 1
    print("cold restart: recall preserved from disk", file=out)
    return 0


def _capture_cluster_observability(args, client, queries, out) -> int:
    """Write the drill's stitched trace and/or merged telemetry view.

    Runs after the workload (and after any smoke/chaos drill), so what it
    captures shows the *recovered* ring: the trace proves cross-process
    span stitching works end to end, the telemetry scrape proves every
    surviving member answers with a parseable, versioned snapshot.
    """
    import json

    from repro.rpc.client import ClusterScraper

    client.refresh()
    if args.trace:
        result, trace, report = client.query_traced(queries[0])
        print(
            f"trace: stitched {report.attached} server span(s) from "
            f"{len(report.nodes)} peer(s) "
            f"({', '.join(sorted(report.nodes)) or 'none'}), "
            f"{report.orphans} orphan(s), recall {result.recall:.2f}",
            file=out,
        )
        with open(args.trace, "w", encoding="utf-8") as handle:
            json.dump(
                {"trace": trace.to_dict(), "stitch": report.to_dict()},
                handle,
                indent=2,
                default=str,
            )
        print(f"trace: wrote stitched trace to {args.trace}", file=out)
        if report.attached == 0:
            print(
                "error: no server-side span was stitched into the trace "
                "(telemetry RPC broken, or no peer sampled the query)",
                file=sys.stderr,
            )
            return 1
    if args.telemetry:
        scraper = ClusterScraper(client)
        view = scraper.scrape()
        print(
            f"telemetry: scraped {view['scraped']}/{view['members']} "
            f"members, service p50/p95/p99 "
            f"{view['service_ms']['p50']:g}/{view['service_ms']['p95']:g}/"
            f"{view['service_ms']['p99']:g} ms, "
            f"load skew {view['load_skew']:.3f}"
            + (
                f", down: {', '.join(sorted(view['down']))}"
                if view.get("down")
                else ""
            ),
            file=out,
        )
        with open(args.telemetry, "w", encoding="utf-8") as handle:
            json.dump(view, handle, indent=2, default=str)
        print(f"telemetry: wrote cluster view to {args.telemetry}", file=out)
        if view["errors"]:
            print(
                f"error: telemetry scrape failed for "
                f"{sorted(view['errors'])}: {view['errors']}",
                file=sys.stderr,
            )
            return 1
    return 0


def _await_reconvergence(cluster, client, timeout_s: float) -> bool:
    """Poll until every live peer's member map equals the live set."""
    import asyncio
    import time

    from repro.rpc import wire

    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        live = {a for a in cluster.endpoints if cluster.alive(a)}
        try:
            client.refresh()
        except ReproError:
            time.sleep(1.0)
            continue
        if set(client.members) == live:
            agreed = True
            for address in sorted(live):
                host, port = cluster.endpoints[address]
                try:
                    hello = asyncio.run(
                        wire.call(host, port, "hello", timeout_ms=2_000.0)
                    )
                except ReproError:
                    agreed = False
                    break
                if set(hello["members"]) != live:
                    agreed = False
                    break
            if agreed:
                return True
        time.sleep(1.0)
    return False


def _pick_smoke_victim(client, query) -> str:
    """A peer that replicates (but does not own) the first query's first
    identifier — killing it must be absorbed by replica-chain failover.
    Never the client's bootstrap peer, which it needs for refresh()."""
    system = client.system
    ring = system.router.ring
    bootstrap_node = None
    for node_id in ring.node_ids:
        if system.endpoints[node_id] == client.bootstrap:
            bootstrap_node = node_id
    for identifier in system.identifiers_for(query):
        for replica in system.replica_owners(identifier)[1:]:
            if replica != bootstrap_node:
                return ring.node(replica).address
    raise ReproError("no non-owner replica available to kill")


def _run_client(args: argparse.Namespace, out) -> int:
    from repro.rpc.client import ClusterClient

    start_text, _, end_text = args.query.partition(":")
    try:
        query = IntRange(int(start_text), int(end_text))
    except ValueError as exc:
        raise ReproError(f"bad --query (want START:END): {exc}") from exc
    with ClusterClient(_parse_endpoint(args.bootstrap)) as client:
        print(f"cluster: {len(client.members)} members", file=out)
        for run_index in range(max(1, args.repeat)):
            result = client.query(query)
            print(
                f"run {run_index + 1}: matched={result.matched} "
                f"similarity={result.similarity:.3f} "
                f"recall={result.recall:.2f} hops={result.overlay_hops} "
                f"latency={result.total_ms:.1f} ms",
                file=out,
            )
    return 0


def _render_top(view: dict) -> str:
    """One refresh of the dashboard as fixed-width text."""
    from repro.metrics.report import format_table

    rows = []
    for address, node in sorted(view["nodes"].items()):
        census = node.get("census") or {}
        states = node.get("swim_states") or {}
        # A state is "alive" or a ("alive", incarnation) pair on the wire.
        alive = sum(
            1
            for state in states.values()
            if (state[0] if isinstance(state, (list, tuple)) else state)
            == "alive"
        )
        skew = node.get("clock_skew_ms")
        rows.append(
            (
                address,
                f"{node.get('qps', 0.0):.1f}",
                node.get("queue_depth", 0),
                node.get("pending_repair", 0),
                census.get("entries", 0),
                census.get("primaries", 0),
                node.get("breaker", "-"),
                f"{alive}/{len(states)}" if states else "-",
                node.get("swim_epoch", "-"),
                f"{skew:+.0f}" if isinstance(skew, (int, float)) else "-",
            )
        )
    for address, error in sorted(view.get("errors", {}).items()):
        rows.append((address, "-", "-", "-", "-", "-", "-", "-", "-", error))
    for address in sorted(view.get("down", [])):
        rows.append((address, "-", "-", "-", "-", "-", "down", "-", "-", "-"))
    service = view.get("service_ms") or {}
    lines = [
        format_table(
            (
                "peer", "qps", "queue", "repair", "entries", "prim",
                "breaker", "alive", "epoch", "skew ms",
            ),
            rows,
            title=(
                f"cluster: {view.get('scraped', 0)}/{view.get('members', 0)} "
                "members scraped"
            ),
        ),
        (
            f"service_ms p50/p95/p99 {service.get('p50', 0):g}/"
            f"{service.get('p95', 0):g}/{service.get('p99', 0):g} "
            f"(mean {service.get('mean', 0.0):.2f}, "
            f"n={service.get('count', 0)}), "
            f"load skew (gini) {view.get('load_skew', 0.0):.3f}"
        ),
    ]
    return "\n".join(lines)


def _run_top(args: argparse.Namespace, out) -> int:
    import json
    import time

    from repro.rpc.client import ClusterClient, ClusterScraper

    if args.interval <= 0:
        raise ReproError("--interval must be positive")
    view = None
    with ClusterClient(_parse_endpoint(args.bootstrap)) as client:
        scraper = ClusterScraper(client)
        refreshes = 0
        try:
            while True:
                try:
                    client.refresh()
                except ReproError:
                    pass  # bootstrap hiccup; scrape the mirrored members
                view = scraper.scrape()
                if not args.plain:
                    print("\x1b[2J\x1b[H", end="", file=out)
                print(_render_top(view), file=out)
                refreshes += 1
                if args.iterations and refreshes >= args.iterations:
                    break
                time.sleep(args.interval)
        except KeyboardInterrupt:
            pass
    if args.json is not None and view is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(view, handle, indent=2, default=str)
        print(f"wrote cluster view to {args.json}", file=out)
    if view is not None and not view["nodes"]:
        print(
            f"error: no member answered telemetry ({view['errors']})",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_trace(args: argparse.Namespace, out) -> int:
    import json
    import time

    from repro.obs.distributed import format_trace
    from repro.rpc.client import ClusterClient

    start_text, _, end_text = args.query.partition(":")
    try:
        query = IntRange(int(start_text), int(end_text))
    except ValueError as exc:
        raise ReproError(f"bad --query (want START:END): {exc}") from exc
    last = None
    with ClusterClient(_parse_endpoint(args.bootstrap)) as client:
        run_index = 0
        try:
            while True:
                result, trace, report = client.query_traced(query)
                last = (trace, report)
                print(
                    f"run {run_index + 1}: matched={result.matched} "
                    f"recall={result.recall:.2f} "
                    f"latency={result.total_ms:.1f} ms — stitched "
                    f"{report.attached} server span(s) from "
                    f"{len(report.nodes)} peer(s), "
                    f"{report.orphans} orphan(s)"
                    + (
                        f", skew suspects {report.skew_suspects}"
                        if report.skew_suspects
                        else ""
                    ),
                    file=out,
                )
                print(format_trace(trace), file=out)
                run_index += 1
                if args.follow:
                    time.sleep(args.interval)
                    continue
                if run_index >= max(1, args.repeat):
                    break
        except KeyboardInterrupt:
            pass
    if args.json is not None and last is not None:
        trace, report = last
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {"trace": trace.to_dict(), "stitch": report.to_dict()},
                handle,
                indent=2,
                default=str,
            )
        print(f"wrote stitched trace to {args.json}", file=out)
    return 0


def _run_experiments(args: argparse.Namespace, out) -> int:
    from repro.experiments.runall import run_all

    run_all(scale=args.scale, results_dir=args.out)
    return 0


def _run_info(out) -> int:
    config = SystemConfig()
    print(f"default config: {config.describe()}", file=out)
    print(
        "LSH theory: match probability at similarity 0.9 is "
        f"{1 - (1 - 0.9 ** config.k) ** config.l:.2f} "
        f"(k={config.k}, l={config.l})",
        file=out,
    )
    return 0


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    if out is None:
        out = sys.stdout
    args = build_parser().parse_args(argv)
    if args.verbose:
        from repro.obs.log import configure_logging

        configure_logging(args.verbose)
    try:
        if args.command == "demo":
            return _run_demo(args, out)
        if args.command == "sql":
            return _run_sql(args, out)
        if args.command == "simulate":
            return _run_simulate(args, out)
        if args.command == "metrics":
            return _run_metrics(args, out)
        if args.command == "health":
            return _run_health(args, out)
        if args.command == "serve":
            return _run_serve(args, out)
        if args.command == "cluster":
            return _run_cluster(args, out)
        if args.command == "client":
            return _run_client(args, out)
        if args.command == "top":
            return _run_top(args, out)
        if args.command == "trace":
            return _run_trace(args, out)
        if args.command == "experiments":
            return _run_experiments(args, out)
        if args.command == "info":
            return _run_info(out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError("unreachable: argparse enforces a command")


if __name__ == "__main__":
    raise SystemExit(main())
