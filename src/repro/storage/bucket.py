"""One hash bucket: the partitions stored under a single identifier."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.db.partition import Partition, PartitionDescriptor
from repro.ranges.interval import IntRange

__all__ = ["StoredEntry", "Bucket"]


@dataclass
class StoredEntry:
    """A cached partition: descriptor always, rows only when data is kept.

    The scalability simulations store descriptors only (the paper's
    simulator does the same — it tracks placements, not tuples); the full
    database front end stores rows too.

    ``primary`` distinguishes the copy at the identifier's owner from the
    redundant copies the replication layer places at the owner's
    successors; eviction prefers shedding replicas, and repair promotes a
    replica to primary when ownership moves onto its holder.
    """

    descriptor: PartitionDescriptor
    partition: Partition | None = None
    access_clock: int = 0
    primary: bool = True


class Bucket:
    """The list of entries stored under one identifier at one peer."""

    def __init__(self, identifier: int) -> None:
        self.identifier = identifier
        self._entries: dict[PartitionDescriptor, StoredEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[StoredEntry]:
        return iter(self._entries.values())

    def __contains__(self, descriptor: PartitionDescriptor) -> bool:
        return descriptor in self._entries

    def add(self, entry: StoredEntry) -> bool:
        """Insert unless an identical descriptor is already present.

        Returns True when the entry was newly stored.  Re-adding an existing
        descriptor *with* rows upgrades a descriptor-only entry in place.
        A re-add also refreshes the entry's ``access_clock`` — a
        re-stored partition is recent activity, and keeping the stale
        timestamp would leave the upgraded entry first in line for LRU
        eviction.
        """
        existing = self._entries.get(entry.descriptor)
        if existing is not None:
            if existing.partition is None and entry.partition is not None:
                existing.partition = entry.partition
            if entry.primary:
                existing.primary = True
            existing.access_clock = max(existing.access_clock, entry.access_clock)
            return False
        self._entries[entry.descriptor] = entry
        return True

    def remove(self, descriptor: PartitionDescriptor) -> StoredEntry | None:
        """Remove and return the entry for ``descriptor``, if present."""
        return self._entries.pop(descriptor, None)

    def get(self, descriptor: PartitionDescriptor) -> StoredEntry | None:
        """The entry for ``descriptor``, if present."""
        return self._entries.get(descriptor)

    def best_match(
        self,
        query: IntRange,
        relation: str,
        attribute: str,
        score: Callable[[IntRange, PartitionDescriptor], float],
    ) -> tuple[StoredEntry, float] | None:
        """The highest-scoring entry for the query, restricted to the same
        relation and attribute.  Exact matches win ties.
        """
        best: tuple[StoredEntry, float] | None = None
        for entry in self._entries.values():
            descriptor = entry.descriptor
            if descriptor.relation != relation or descriptor.attribute != attribute:
                continue
            value = score(query, descriptor)
            if best is None or value > best[1] or (
                value == best[1] and descriptor.range == query
            ):
                best = (entry, value)
        return best

    def descriptors(self) -> list[PartitionDescriptor]:
        """All descriptors in the bucket."""
        return list(self._entries)
