"""Write-ahead log and crash-restart durability for one peer's store.

A live :class:`~repro.rpc.server.PeerServer` is in-memory; this module
makes it survive its own SIGKILL.  The contract is *append before ack*:
every entry mutation (store, repair push, handoff, eviction) is journaled
to an fsync'd append-only log before the server replies to the request
that caused it, so any write a client saw acknowledged is on disk.

On-disk layout under one ``--data-dir`` (one directory per peer)::

    wal.log        append-only journal, 4-byte BE length-prefixed JSON
    snapshot.json  compaction target (``storage.snapshot`` peer format)
    meta.json      SWIM incarnation persisted across restarts

WAL records reuse the :mod:`repro.rpc.wire` codec tags (``$desc``,
``$part``) so descriptors and partitions round-trip through the journal
exactly as they do across the network.  The framing mirrors the wire
protocol's: a torn tail — a SIGKILL mid-append — is detected by an
incomplete prefix, an incomplete body, or a body that does not parse,
and replay salvages every complete record before it (the same policy as
:func:`repro.util.read_jsonl_tolerant` for flight-recorder JSONL).

Compaction folds the journal into an atomic-rename snapshot every
``compact_every`` appends.  The snapshot records the last WAL sequence
number it covers; the snapshot rename happens *before* the journal is
truncated, so a crash between the two leaves records the snapshot
already contains — replay skips any record with ``seq <= wal_seq`` and
recovery stays idempotent.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import Any

from repro.errors import StorageError
from repro.rpc import wire
from repro.storage.snapshot import (
    load_peer_snapshot,
    restore_peer_store,
    save_peer_snapshot,
)
from repro.storage.store import PeerStore
from repro.util.tolerant import parse_json_record

__all__ = [
    "WalWriter",
    "read_wal_tolerant",
    "PeerDurability",
    "encode_wal_record",
    "decode_wal_record",
]

_LENGTH = struct.Struct("!I")

#: Upper bound on one journal record's JSON body; same rationale (and
#: size) as the wire frame cap — a corrupt prefix must not allocate
#: blindly during replay.
MAX_RECORD_BYTES = wire.MAX_FRAME_BYTES


def encode_wal_record(op: dict) -> dict:
    """A mutation-hook op record as JSON-safe data (wire codec tags)."""
    record: dict[str, Any] = {
        "op": op["op"],
        "via": op.get("via", "store"),
        "identifier": op["identifier"],
        "descriptor": wire.encode_value(op["descriptor"]),
    }
    if op["op"] == "store":
        if op.get("partition") is not None:
            record["partition"] = wire.encode_value(op["partition"])
        record["primary"] = bool(op["primary"])
        record["access_clock"] = int(op["access_clock"])
        record["clock"] = int(op["clock"])
    return record


def decode_wal_record(record: dict) -> dict:
    """Inverse of :func:`encode_wal_record` (live objects restored)."""
    op: dict[str, Any] = {
        "op": record["op"],
        "via": record.get("via", "store"),
        "identifier": int(record["identifier"]),
        "descriptor": wire.decode_value(record["descriptor"]),
    }
    if record["op"] == "store":
        op["partition"] = (
            wire.decode_value(record["partition"])
            if "partition" in record
            else None
        )
        op["primary"] = bool(record.get("primary", True))
        op["access_clock"] = int(record.get("access_clock", 0))
        op["clock"] = int(record.get("clock", 0))
    return op


class WalWriter:
    """Appends length-prefixed JSON records to the journal.

    ``fsync=True`` (the default) makes every append durable before the
    caller proceeds — the "append before ack" half of the contract.
    Benchmarks and tests may disable it to measure/exercise the encode
    and framing path without paying for disk flushes.
    """

    def __init__(self, path: "str | Path", *, fsync: bool = True, seq: int = 0):
        self.path = Path(path)
        self.fsync = fsync
        self.seq = seq
        self._handle = open(self.path, "ab")
        self.appended = 0

    def append(self, record: dict) -> int:
        """Write one record; returns its assigned sequence number."""
        self.seq += 1
        body = json.dumps(
            {"seq": self.seq, **record}, separators=(",", ":")
        ).encode("utf-8")
        if len(body) > MAX_RECORD_BYTES:
            raise StorageError(
                f"WAL record of {len(body)} bytes exceeds MAX_RECORD_BYTES"
            )
        self._handle.write(_LENGTH.pack(len(body)) + body)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.appended += 1
        return self.seq

    def truncate(self) -> None:
        """Drop every journaled record (after a successful compaction)."""
        self._handle.seek(0)
        self._handle.truncate()
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


def read_wal_tolerant(path: "str | Path") -> tuple[list[dict], int, int]:
    """Replay the journal, salvaging every complete record.

    Returns ``(records, torn, valid_bytes)`` where ``torn`` counts
    undecodable records and ``valid_bytes`` is the length of the readable
    prefix.  The journal is append-only, so the first torn record ends
    the readable region — framing is lost past it — exactly like a
    truncated final JSONL line in the flight recorder.  Writers resuming
    after a crash must truncate the file to ``valid_bytes`` before
    appending, or the records they add land beyond the torn region and
    become unreachable on the *next* replay.  A missing file reads as
    empty.
    """
    records: list[dict] = []
    torn = 0
    try:
        raw = Path(path).read_bytes()
    except (FileNotFoundError, OSError):
        return records, torn, 0
    offset = 0
    total = len(raw)
    while offset < total:
        if offset + _LENGTH.size > total:
            torn += 1  # torn tail: partial length prefix
            break
        (length,) = _LENGTH.unpack_from(raw, offset)
        if length > MAX_RECORD_BYTES or offset + _LENGTH.size + length > total:
            torn += 1  # torn tail: body never completed (or corrupt prefix)
            break
        body = raw[offset + _LENGTH.size : offset + _LENGTH.size + length]
        record = parse_json_record(body)
        if record is None or "seq" not in record or "op" not in record:
            torn += 1  # corrupt record: framing can't be trusted past it
            break
        records.append(record)
        offset += _LENGTH.size + length
    return records, torn, offset


class PeerDurability:
    """One peer's durable state: journal + snapshot + membership meta.

    Lifecycle on a server with ``--data-dir``::

        durability = PeerDurability(data_dir)
        stats = durability.recover(store)   # replay snapshot + WAL
        durability.attach(store)            # journal mutations from now on
        ...
        durability.close()

    ``recover`` must run before ``attach`` — replay goes through the
    store's replay primitives precisely so it cannot re-journal itself.
    """

    SNAPSHOT_NAME = "snapshot.json"
    WAL_NAME = "wal.log"
    META_NAME = "meta.json"

    def __init__(
        self,
        data_dir: "str | Path",
        *,
        fsync: bool = True,
        compact_every: int = 512,
    ) -> None:
        if compact_every <= 0:
            raise StorageError("compact_every must be positive")
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.compact_every = compact_every
        self._store: PeerStore | None = None
        self._writer: WalWriter | None = None
        self._since_compact = 0
        self._seq_floor = 0
        self._valid_wal_bytes: int | None = None
        self.compactions = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    @property
    def snapshot_path(self) -> Path:
        return self.data_dir / self.SNAPSHOT_NAME

    @property
    def wal_path(self) -> Path:
        return self.data_dir / self.WAL_NAME

    @property
    def meta_path(self) -> Path:
        return self.data_dir / self.META_NAME

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self, store: PeerStore) -> dict:
        """Rebuild ``store`` from snapshot + WAL; returns replay stats.

        Tolerates a missing or partial snapshot (falls back to pure WAL
        replay) and a torn WAL tail (salvages every complete record).
        Every record the snapshot already covers is skipped by sequence
        number, so recovering after a crash mid-compaction applies each
        mutation exactly once.
        """
        snapshot_entries = 0
        wal_seq = 0
        snapshot = load_peer_snapshot(self.snapshot_path)
        if snapshot is not None:
            snapshot_entries = restore_peer_store(snapshot, store)
            wal_seq = int(snapshot.get("wal_seq", 0))
        records, torn, valid_bytes = read_wal_tolerant(self.wal_path)
        self._valid_wal_bytes = valid_bytes
        replayed = 0
        last_seq = wal_seq
        for record in records:
            seq = int(record["seq"])
            last_seq = max(last_seq, seq)
            if seq <= wal_seq:
                continue  # already folded into the snapshot
            op = decode_wal_record(record)
            if op["op"] == "store":
                store.apply_store(
                    op["identifier"],
                    op["descriptor"],
                    op["partition"],
                    op["primary"],
                    op["access_clock"],
                )
                store._clock = max(store._clock, op["clock"])
            else:
                store.apply_remove(op["identifier"], op["descriptor"])
            replayed += 1
        self._seq_floor = last_seq
        return {
            "snapshot_entries": snapshot_entries,
            "wal_records": replayed,
            "torn_records": torn,
            "entries": store.partition_count,
        }

    # ------------------------------------------------------------------
    # Journaling
    # ------------------------------------------------------------------

    def attach(self, store: PeerStore) -> None:
        """Start journaling ``store``'s mutations (call after recover).

        If recovery found a torn tail, the journal is truncated back to
        its readable prefix first — appending past torn bytes would put
        every new record beyond the point where the next replay stops.
        """
        if self._valid_wal_bytes is None and self.wal_path.exists():
            _, _, self._valid_wal_bytes = read_wal_tolerant(self.wal_path)
        if self._valid_wal_bytes is not None:
            try:
                if self.wal_path.stat().st_size > self._valid_wal_bytes:
                    with open(self.wal_path, "r+b") as handle:
                        handle.truncate(self._valid_wal_bytes)
                        handle.flush()
                        if self.fsync:
                            os.fsync(handle.fileno())
            except FileNotFoundError:
                pass
        self._store = store
        self._writer = WalWriter(
            self.wal_path, fsync=self.fsync, seq=self._seq_floor
        )
        store.mutation_hook = self._on_mutation

    def _on_mutation(self, op: dict) -> None:
        assert self._writer is not None
        self._writer.append(encode_wal_record(op))
        self._since_compact += 1
        if self._since_compact >= self.compact_every:
            self.compact()

    def compact(self) -> None:
        """Fold the journal into the snapshot and truncate it.

        Snapshot first (atomic rename carrying the covered ``wal_seq``),
        truncate second: a crash in between merely leaves records the
        snapshot already covers, which replay skips by sequence number.
        """
        if self._store is None or self._writer is None:
            return
        save_peer_snapshot(
            self._store, self.snapshot_path, wal_seq=self._writer.seq
        )
        self._writer.truncate()
        self._since_compact = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Membership metadata
    # ------------------------------------------------------------------

    def load_incarnation(self) -> int | None:
        """The SWIM incarnation persisted by a previous run, if any."""
        try:
            raw = self.meta_path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return None
        doc = parse_json_record(raw)
        if doc is None or not isinstance(doc.get("incarnation"), int):
            return None
        return doc["incarnation"]

    def store_incarnation(self, incarnation: int) -> None:
        """Persist the peer's current SWIM incarnation (atomic rename).

        Written on every self-incarnation bump; a restarting peer resumes
        at ``persisted + 1`` so its rejoin beats any tombstone the
        cluster holds for its previous life.
        """
        tmp = self.meta_path.with_name(self.meta_path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"incarnation": incarnation}))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.meta_path)

    def close(self) -> None:
        """Detach the hook and close the journal."""
        if self._store is not None and self._store.mutation_hook is self._on_mutation:
            self._store.mutation_hook = None
        if self._writer is not None:
            self._writer.close()
        self._store = None
