"""The per-peer store: buckets plus an optional eviction policy."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterator

from repro.db.partition import Partition, PartitionDescriptor
from repro.errors import StorageError
from repro.ranges.interval import IntRange
from repro.storage.bucket import Bucket, StoredEntry

__all__ = ["PeerStore", "EvictionPolicy", "NoEviction", "LRUEviction"]

ScoreFn = Callable[[IntRange, PartitionDescriptor], float]

#: Observer invoked after every entry mutation with a structured op
#: record (live objects, not wire forms).  The durability layer attaches
#: one to journal mutations; when unset (the default) the store's
#: behavior is unchanged.
MutationHook = Callable[[dict], None]


class EvictionPolicy(ABC):
    """Decides which entry leaves the store when capacity is exceeded."""

    @abstractmethod
    def on_insert(self, store: "PeerStore") -> None:
        """Called after an insert; may evict entries to honour capacity."""

    @abstractmethod
    def on_access(self, entry: StoredEntry, clock: int) -> None:
        """Called when an entry participates in a match."""


class NoEviction(EvictionPolicy):
    """Unbounded store (the paper's model)."""

    def on_insert(self, store: "PeerStore") -> None:  # noqa: D102
        pass

    def on_access(self, entry: StoredEntry, clock: int) -> None:  # noqa: D102
        pass


class LRUEviction(EvictionPolicy):
    """Capacity-bounded store, evicting the least recently used entry.

    Replica copies are shed before primaries: evicting a replica only
    costs redundancy (the identifier's owner still holds the entry), while
    evicting a primary can lose the last authoritative copy.  Among
    entries of the same role, least recently used goes first.
    """

    def __init__(self, max_partitions: int) -> None:
        if max_partitions <= 0:
            raise StorageError("LRU capacity must be positive")
        self.max_partitions = max_partitions

    def on_insert(self, store: "PeerStore") -> None:
        while store.partition_count > self.max_partitions:
            victim = min(
                store.entries(),
                key=lambda pair: (pair[1].primary, pair[1].access_clock),
            )
            identifier, entry = victim
            store.remove(identifier, entry.descriptor)

    def on_access(self, entry: StoredEntry, clock: int) -> None:
        entry.access_clock = clock


#: Modelled wire/storage size of a descriptor-only entry (no rows kept);
#: matches the default ``size_bytes`` the system charges for store traffic.
DESCRIPTOR_ONLY_BYTES = 64


class PeerStore:
    """All hash buckets one peer is responsible for."""

    def __init__(self, peer_id: int, eviction: EvictionPolicy | None = None) -> None:
        self.peer_id = peer_id
        self.eviction = eviction if eviction is not None else NoEviction()
        self._buckets: dict[int, Bucket] = {}
        self._clock = 0
        #: Match requests this peer has answered (hit or miss) — the
        #: per-node "queries served" gauge the health sampler reads.
        self.queries_served = 0
        #: Store requests this peer has handled (new or duplicate).
        self.stores_served = 0
        #: Optional durability observer; see :data:`MutationHook`.
        self.mutation_hook: MutationHook | None = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def store(
        self,
        identifier: int,
        descriptor: PartitionDescriptor,
        partition: Partition | None = None,
        primary: bool = True,
        *,
        via: str = "store",
    ) -> bool:
        """Store a partition under ``identifier``; returns True when new.

        ``primary=False`` marks the copy as a replica placed for fault
        tolerance; re-storing an existing entry as primary promotes it.
        ``via`` labels the mutation for the durability hook ("store",
        "repair-push", "handoff", ...); it does not change behavior.
        """
        bucket = self._buckets.get(identifier)
        if bucket is None:
            bucket = Bucket(identifier)
            self._buckets[identifier] = bucket
        self._clock += 1
        self.stores_served += 1
        added = bucket.add(
            StoredEntry(
                descriptor=descriptor,
                partition=partition,
                access_clock=self._clock,
                primary=primary,
            )
        )
        if self.mutation_hook is not None:
            # Journal the entry's *post-merge* state: a duplicate store
            # still promotes/refreshes, and replaying final states in
            # order converges to the same entry.
            final = bucket.get(descriptor)
            assert final is not None
            self.mutation_hook(
                {
                    "op": "store",
                    "via": via,
                    "identifier": identifier,
                    "descriptor": descriptor,
                    "partition": final.partition,
                    "primary": final.primary,
                    "access_clock": final.access_clock,
                    "clock": self._clock,
                }
            )
        if added:
            self.eviction.on_insert(self)
        return added

    def remove(
        self,
        identifier: int,
        descriptor: PartitionDescriptor,
        *,
        via: str = "evict",
    ) -> bool:
        """Remove one entry; prunes the bucket when it empties."""
        bucket = self._buckets.get(identifier)
        if bucket is None:
            return False
        removed = bucket.remove(descriptor) is not None
        if removed and len(bucket) == 0:
            del self._buckets[identifier]
        if removed and self.mutation_hook is not None:
            self.mutation_hook(
                {
                    "op": "remove",
                    "via": via,
                    "identifier": identifier,
                    "descriptor": descriptor,
                }
            )
        return removed

    def apply_store(
        self,
        identifier: int,
        descriptor: PartitionDescriptor,
        partition: Partition | None,
        primary: bool,
        access_clock: int,
    ) -> bool:
        """Replay primitive: insert an entry with explicit clocks.

        Used by snapshot restore and WAL replay.  Unlike :meth:`store`
        it neither advances the logical clock nor triggers eviction —
        evictions are replayed from their own journal records — and it
        never fires the mutation hook (replay must not re-journal).
        """
        bucket = self._buckets.get(identifier)
        if bucket is None:
            bucket = Bucket(identifier)
            self._buckets[identifier] = bucket
        added = bucket.add(
            StoredEntry(
                descriptor=descriptor,
                partition=partition,
                access_clock=access_clock,
                primary=primary,
            )
        )
        self._clock = max(self._clock, access_clock)
        return added

    def apply_remove(self, identifier: int, descriptor: PartitionDescriptor) -> bool:
        """Replay primitive: remove without firing the mutation hook."""
        bucket = self._buckets.get(identifier)
        if bucket is None:
            return False
        removed = bucket.remove(descriptor) is not None
        if removed and len(bucket) == 0:
            del self._buckets[identifier]
        return removed

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def bucket(self, identifier: int) -> Bucket | None:
        """The bucket for ``identifier``, or None when empty."""
        return self._buckets.get(identifier)

    def best_match_in_bucket(
        self,
        identifier: int,
        query: IntRange,
        relation: str,
        attribute: str,
        score: ScoreFn,
    ) -> tuple[StoredEntry, float] | None:
        """Best match searching *only* the requested identifier's bucket
        (the paper's base scheme)."""
        self.queries_served += 1
        bucket = self._buckets.get(identifier)
        if bucket is None:
            return None
        best = bucket.best_match(query, relation, attribute, score)
        if best is not None:
            self._clock += 1
            self.eviction.on_access(best[0], self._clock)
        return best

    def best_match_local(
        self,
        query: IntRange,
        relation: str,
        attribute: str,
        score: ScoreFn,
    ) -> tuple[StoredEntry, float] | None:
        """Best match over *every* bucket at this peer.

        Section 5.3's local-index refinement: "we could now build up an
        index over all the partitions that get stored in various buckets at
        a peer" and search it instead of one bucket.
        """
        self.queries_served += 1
        best: tuple[StoredEntry, float] | None = None
        for bucket in self._buckets.values():
            candidate = bucket.best_match(query, relation, attribute, score)
            if candidate is None:
                continue
            if best is None or candidate[1] > best[1]:
                best = candidate
        if best is not None:
            self._clock += 1
            self.eviction.on_access(best[0], self._clock)
        return best

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def clock(self) -> int:
        """Current value of the store's logical access clock."""
        return self._clock

    @property
    def partition_count(self) -> int:
        """Total entries across all buckets (the paper's load metric)."""
        return sum(len(b) for b in self._buckets.values())

    @property
    def stored_bytes(self) -> int:
        """Modelled bytes held: partition sizes, or the descriptor-only
        charge for entries stored without rows."""
        return sum(
            entry.partition.size_bytes
            if entry.partition is not None
            else DESCRIPTOR_ONLY_BYTES
            for _, entry in self.entries()
        )

    @property
    def bucket_count(self) -> int:
        """Number of non-empty buckets."""
        return len(self._buckets)

    @property
    def primary_count(self) -> int:
        """Entries this peer holds as the identifier's owner."""
        return sum(1 for _, entry in self.entries() if entry.primary)

    @property
    def replica_count(self) -> int:
        """Entries this peer holds as redundant replicas."""
        return sum(1 for _, entry in self.entries() if not entry.primary)

    def entries(self) -> Iterator[tuple[int, StoredEntry]]:
        """Every (identifier, entry) pair in the store."""
        for identifier, bucket in self._buckets.items():
            for entry in bucket:
                yield identifier, entry

    def identifiers(self) -> list[int]:
        """Identifiers with non-empty buckets."""
        return list(self._buckets)
