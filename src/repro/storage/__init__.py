"""Per-peer partition stores.

A peer "is responsible for all hash buckets corresponding to identifiers
from the identifier of its predecessor node (excluding it) to itself"
(Section 4).  :class:`PeerStore` holds those buckets: a mapping from
identifier to the list of partitions stored under it, with optional
capacity-bounded LRU eviction (an extension — the paper assumes unbounded
caches).
"""

from repro.storage.bucket import Bucket, StoredEntry
from repro.storage.store import EvictionPolicy, LRUEviction, NoEviction, PeerStore

# NOTE: repro.storage.snapshot is intentionally *not* imported here: it
# depends on repro.core.system (which itself imports repro.storage.store),
# so pulling it in at package-import time would create an import cycle.
# Import it explicitly: ``from repro.storage.snapshot import save_system``.

__all__ = [
    "Bucket",
    "StoredEntry",
    "PeerStore",
    "EvictionPolicy",
    "NoEviction",
    "LRUEviction",
]
