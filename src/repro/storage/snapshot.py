"""System snapshots: persist and restore the cache state as JSON.

Long experiments (and example sessions) warm the cache over thousands of
queries; snapshots let that state be saved and reloaded without replaying
the workload.  A snapshot captures the configuration and every stored
entry (identifier, descriptor, rows); loading rebuilds the system from the
same configuration — the hash functions and ring layout are deterministic
in the seed — and re-places each entry at its owner.

Two snapshot shapes share the entry-record format:

* the *system* snapshot (one file for a whole in-process simulation,
  placement recomputed on load), and
* the *peer* snapshot (one peer's store, written by the durability layer
  as the compaction target of its write-ahead log; placement is kept
  as-is because the live server reconciles ownership after restart).
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.db.partition import Partition, PartitionDescriptor
from repro.errors import StorageError
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange
from repro.storage.store import PeerStore

__all__ = [
    "snapshot_system",
    "restore_system",
    "save_system",
    "load_system",
    "snapshot_peer_store",
    "restore_peer_store",
    "save_peer_snapshot",
    "load_peer_snapshot",
]

_FORMAT_VERSION = 1
_PEER_FORMAT_VERSION = 1


def _entry_record(identifier: int, entry) -> dict:
    """One stored entry as a JSON-safe record (shared by both shapes)."""
    descriptor = entry.descriptor
    record: dict = {
        "identifier": identifier,
        "relation": descriptor.relation,
        "attribute": descriptor.attribute,
        "start": descriptor.range.start,
        "end": descriptor.range.end,
    }
    if entry.partition is not None:
        record["rows"] = [list(row) for row in entry.partition.rows]
    return record


def _descriptor_from_record(record: dict) -> PartitionDescriptor:
    return PartitionDescriptor(
        record["relation"],
        record["attribute"],
        IntRange(record["start"], record["end"]),
    )


def _partition_from_record(
    record: dict, descriptor: PartitionDescriptor
) -> Partition | None:
    if "rows" not in record:
        return None
    return Partition(
        descriptor=descriptor,
        rows=tuple(tuple(row) for row in record["rows"]),
    )


def _config_to_dict(config: SystemConfig) -> dict:
    raw = dataclasses.asdict(config)
    raw["domain"] = {
        "name": config.domain.name,
        "low": config.domain.low,
        "high": config.domain.high,
    }
    return raw


def _config_from_dict(raw: dict) -> SystemConfig:
    data = dict(raw)
    domain = data.pop("domain")
    return SystemConfig(
        domain=Domain(domain["name"], domain["low"], domain["high"]), **data
    )


def snapshot_system(system: RangeSelectionSystem) -> dict:
    """The system's persistent state as a JSON-serializable dict."""
    entries = []
    for store in system.stores.values():
        for identifier, entry in store.entries():
            entries.append(_entry_record(identifier, entry))
    return {
        "format": _FORMAT_VERSION,
        "config": _config_to_dict(system.config),
        "entries": entries,
    }


def restore_system(snapshot: dict) -> RangeSelectionSystem:
    """Rebuild a system from a snapshot produced by :func:`snapshot_system`.

    Placement is *recomputed* from the configuration rather than trusted
    from the snapshot, so a snapshot can never violate the ownership
    invariant.  Duplicate placements of one descriptor (the ``l`` copies)
    deduplicate naturally through the store.
    """
    if snapshot.get("format") != _FORMAT_VERSION:
        raise StorageError(
            f"unsupported snapshot format {snapshot.get('format')!r}"
        )
    system = RangeSelectionSystem(_config_from_dict(snapshot["config"]))
    for record in snapshot["entries"]:
        descriptor = _descriptor_from_record(record)
        partition = _partition_from_record(record, descriptor)
        identifier = record["identifier"]
        owner = system.router.owner_of(system._place(identifier))
        system.stores[owner].store(identifier, descriptor, partition)
    return system


def save_system(system: RangeSelectionSystem, path: "str | Path") -> None:
    """Write a snapshot to a JSON file."""
    Path(path).write_text(
        json.dumps(snapshot_system(system), separators=(",", ":")),
        encoding="utf-8",
    )


def load_system(path: "str | Path") -> RangeSelectionSystem:
    """Read a snapshot file and restore the system."""
    return restore_system(json.loads(Path(path).read_text(encoding="utf-8")))


# ---------------------------------------------------------------------------
# Peer-store snapshots (the WAL compaction target)
# ---------------------------------------------------------------------------

def snapshot_peer_store(store: PeerStore, *, wal_seq: int = 0) -> dict:
    """One peer's store as a JSON-safe dict.

    Entry records extend the system-snapshot shape with ``primary`` and
    ``access_clock`` so a restart reconstructs replica ranks and LRU
    order exactly; ``wal_seq`` records the last WAL sequence number the
    snapshot covers, so replay can skip records it already contains.
    """
    entries = []
    for identifier, entry in store.entries():
        record = _entry_record(identifier, entry)
        record["primary"] = entry.primary
        record["access_clock"] = entry.access_clock
        entries.append(record)
    return {
        "format": _PEER_FORMAT_VERSION,
        "clock": store.clock,
        "wal_seq": wal_seq,
        "entries": entries,
    }


def restore_peer_store(snapshot: dict, store: PeerStore) -> int:
    """Apply a peer snapshot into ``store``; returns entries applied.

    Uses the replay primitive so clocks and ranks land exactly as
    snapshotted and nothing is re-journaled or evicted mid-restore.
    """
    if snapshot.get("format") != _PEER_FORMAT_VERSION:
        raise StorageError(
            f"unsupported peer snapshot format {snapshot.get('format')!r}"
        )
    applied = 0
    for record in snapshot.get("entries", []):
        descriptor = _descriptor_from_record(record)
        partition = _partition_from_record(record, descriptor)
        store.apply_store(
            int(record["identifier"]),
            descriptor,
            partition,
            bool(record.get("primary", True)),
            int(record.get("access_clock", 0)),
        )
        applied += 1
    store._clock = max(store._clock, int(snapshot.get("clock", 0)))
    return applied


def save_peer_snapshot(
    store: PeerStore, path: "str | Path", *, wal_seq: int = 0
) -> None:
    """Write a peer snapshot atomically (tmp file + rename).

    A crash mid-write leaves either the previous snapshot or none — never
    a torn one — so recovery can always trust a file that parses.
    """
    path = Path(path)
    body = json.dumps(
        snapshot_peer_store(store, wal_seq=wal_seq), separators=(",", ":")
    )
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_peer_snapshot(path: "str | Path") -> dict | None:
    """Read a peer snapshot; ``None`` when missing, torn, or corrupt.

    Recovery treats an unreadable snapshot as absent and falls back to
    pure WAL replay — a partial snapshot must never abort a restart.
    """
    try:
        raw = Path(path).read_text(encoding="utf-8")
    except (FileNotFoundError, OSError):
        return None
    try:
        snapshot = json.loads(raw)
    except ValueError:
        return None
    if not isinstance(snapshot, dict):
        return None
    if snapshot.get("format") != _PEER_FORMAT_VERSION:
        return None
    if not isinstance(snapshot.get("entries"), list):
        return None
    return snapshot
