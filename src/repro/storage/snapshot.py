"""System snapshots: persist and restore the cache state as JSON.

Long experiments (and example sessions) warm the cache over thousands of
queries; snapshots let that state be saved and reloaded without replaying
the workload.  A snapshot captures the configuration and every stored
entry (identifier, descriptor, rows); loading rebuilds the system from the
same configuration — the hash functions and ring layout are deterministic
in the seed — and re-places each entry at its owner.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.db.partition import Partition, PartitionDescriptor
from repro.errors import StorageError
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange

__all__ = ["snapshot_system", "restore_system", "save_system", "load_system"]

_FORMAT_VERSION = 1


def _config_to_dict(config: SystemConfig) -> dict:
    raw = dataclasses.asdict(config)
    raw["domain"] = {
        "name": config.domain.name,
        "low": config.domain.low,
        "high": config.domain.high,
    }
    return raw


def _config_from_dict(raw: dict) -> SystemConfig:
    data = dict(raw)
    domain = data.pop("domain")
    return SystemConfig(
        domain=Domain(domain["name"], domain["low"], domain["high"]), **data
    )


def snapshot_system(system: RangeSelectionSystem) -> dict:
    """The system's persistent state as a JSON-serializable dict."""
    entries = []
    for store in system.stores.values():
        for identifier, entry in store.entries():
            descriptor = entry.descriptor
            record: dict = {
                "identifier": identifier,
                "relation": descriptor.relation,
                "attribute": descriptor.attribute,
                "start": descriptor.range.start,
                "end": descriptor.range.end,
            }
            if entry.partition is not None:
                record["rows"] = [list(row) for row in entry.partition.rows]
            entries.append(record)
    return {
        "format": _FORMAT_VERSION,
        "config": _config_to_dict(system.config),
        "entries": entries,
    }


def restore_system(snapshot: dict) -> RangeSelectionSystem:
    """Rebuild a system from a snapshot produced by :func:`snapshot_system`.

    Placement is *recomputed* from the configuration rather than trusted
    from the snapshot, so a snapshot can never violate the ownership
    invariant.  Duplicate placements of one descriptor (the ``l`` copies)
    deduplicate naturally through the store.
    """
    if snapshot.get("format") != _FORMAT_VERSION:
        raise StorageError(
            f"unsupported snapshot format {snapshot.get('format')!r}"
        )
    system = RangeSelectionSystem(_config_from_dict(snapshot["config"]))
    for record in snapshot["entries"]:
        descriptor = PartitionDescriptor(
            record["relation"],
            record["attribute"],
            IntRange(record["start"], record["end"]),
        )
        partition = None
        if "rows" in record:
            partition = Partition(
                descriptor=descriptor,
                rows=tuple(tuple(row) for row in record["rows"]),
            )
        identifier = record["identifier"]
        owner = system.router.owner_of(system._place(identifier))
        system.stores[owner].store(identifier, descriptor, partition)
    return system


def save_system(system: RangeSelectionSystem, path: "str | Path") -> None:
    """Write a snapshot to a JSON file."""
    Path(path).write_text(
        json.dumps(snapshot_system(system), separators=(",", ":")),
        encoding="utf-8",
    )


def load_system(path: "str | Path") -> RangeSelectionSystem:
    """Read a snapshot file and restore the system."""
    return restore_system(json.loads(Path(path).read_text(encoding="utf-8")))
